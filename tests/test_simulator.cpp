// Tests for the discrete-event simulator and the online dispatcher: replay
// agreement with schedule arithmetic, violation detection, and equivalence
// of the online uncapped dispatcher with Graham list scheduling.
#include <gtest/gtest.h>

#include "algorithms/graham.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/rls.hpp"
#include "sim/event_sim.hpp"
#include "sim/online.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(Simulator, ReplaysValidScheduleAndAgreesOnMetrics) {
  Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(5, 40));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_uniform(gp, rng);
    const Schedule sched = graham_list_schedule(inst, PriorityPolicy::kLpt);
    const SimReport report = simulate_schedule(inst, sched);
    ASSERT_TRUE(report.ok) << report.violation;
    EXPECT_EQ(report.makespan, cmax(inst, sched));
    EXPECT_EQ(report.peak_memory, mmax(inst, sched));
    EXPECT_EQ(report.sum_completion, sum_completion_times(inst, sched));
  }
}

TEST(Simulator, ReplaysDagSchedules) {
  Rng rng(82);
  const Instance inst = generate_dag_by_name("cholesky", 60, 4, {}, rng);
  const RlsResult rls = rls_schedule(inst, Fraction(3), PriorityPolicy::kBottomLevel);
  ASSERT_TRUE(rls.feasible);
  const SimReport report = simulate_schedule(inst, rls.schedule);
  ASSERT_TRUE(report.ok) << report.violation;
  EXPECT_EQ(report.makespan, cmax(inst, rls.schedule));
  EXPECT_EQ(report.peak_memory, mmax(inst, rls.schedule));
}

TEST(Simulator, DetectsOverlap) {
  const Instance inst = make_instance({5, 5}, {1, 1}, 1);
  Schedule bad(inst);
  bad.assign(0, 0, 0);
  bad.assign(1, 0, 2);
  const SimReport report = simulate_schedule(inst, bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("overlap"), std::string::npos);
}

TEST(Simulator, DetectsPrecedenceViolation) {
  Dag d(2);
  d.add_edge(0, 1);
  const Instance inst({{5, 1}, {1, 1}}, 2, d);
  Schedule bad(inst);
  bad.assign(0, 0, 0);
  bad.assign(1, 1, 2);
  const SimReport report = simulate_schedule(inst, bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("precedence"), std::string::npos);
}

TEST(Simulator, AllowsFinishToStartHandoff) {
  Dag d(2);
  d.add_edge(0, 1);
  const Instance inst({{5, 1}, {1, 1}}, 2, d);
  Schedule ok(inst);
  ok.assign(0, 0, 0);
  ok.assign(1, 1, 5);  // starts exactly when the predecessor finishes
  EXPECT_TRUE(simulate_schedule(inst, ok).ok);
}

TEST(Simulator, EnforcesMemoryCap) {
  const Instance inst = make_instance({1, 1}, {6, 6}, 1);
  Schedule sched(inst);
  sched.assign(0, 0, 0);
  sched.assign(1, 0, 1);
  EXPECT_TRUE(simulate_schedule(inst, sched, {.memory_cap = 12}).ok);
  const SimReport capped = simulate_schedule(inst, sched, {.memory_cap = 11});
  EXPECT_FALSE(capped.ok);
  EXPECT_NE(capped.violation.find("memory cap"), std::string::npos);
}

TEST(Simulator, UntimedScheduleRejected) {
  const Instance inst = make_instance({1}, {1}, 1);
  Schedule sched(inst);
  sched.assign(0, 0);
  const SimReport report = simulate_schedule(inst, sched);
  EXPECT_FALSE(report.ok);
}

TEST(Simulator, MemoryProfilesAreMonotoneSteps) {
  const Instance inst = make_instance({2, 3, 4}, {5, 6, 7}, 2);
  const Schedule sched = graham_list_schedule(inst);
  const SimReport report = simulate_schedule(inst, sched);
  ASSERT_TRUE(report.ok);
  for (const auto& profile : report.memory_profiles) {
    for (std::size_t i = 1; i < profile.size(); ++i) {
      EXPECT_LE(profile[i - 1].time, profile[i].time);
      EXPECT_LT(profile[i - 1].occupied, profile[i].occupied);
    }
  }
}

TEST(Simulator, StatsAddUp) {
  const Instance inst = make_instance({4, 4, 4, 4}, {1, 1, 1, 1}, 2);
  const Schedule sched = graham_list_schedule(inst);
  const SimReport report = simulate_schedule(inst, sched);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.makespan, 8);
  EXPECT_DOUBLE_EQ(report.utilization, 1.0);
  EXPECT_EQ(report.total_idle, 0);
  Time busy = 0;
  int tasks = 0;
  for (const auto& proc : report.processors) {
    busy += proc.busy;
    tasks += proc.tasks;
  }
  EXPECT_EQ(busy, inst.total_work());
  EXPECT_EQ(tasks, 4);
}

TEST(Simulator, HandlesZeroLengthTasks) {
  const Instance inst = make_instance({0, 5, 0}, {2, 3, 4}, 1);
  Schedule sched(inst);
  sched.assign(0, 0, 0);
  sched.assign(1, 0, 0);
  sched.assign(2, 0, 5);
  const SimReport report = simulate_schedule(inst, sched);
  ASSERT_TRUE(report.ok) << report.violation;
  EXPECT_EQ(report.peak_memory, 9);
}

TEST(Simulator, TraceCanBeDisabled) {
  const Instance inst = make_instance({1, 2}, {1, 1}, 2);
  const Schedule sched = graham_list_schedule(inst);
  const SimReport with = simulate_schedule(inst, sched, {.keep_trace = true});
  const SimReport without = simulate_schedule(inst, sched, {.keep_trace = false});
  EXPECT_EQ(with.trace.size(), 4u);
  EXPECT_TRUE(without.trace.empty());
  EXPECT_EQ(with.makespan, without.makespan);
}

// ---------------------------------------------------------------------------
// Online dispatcher.
// ---------------------------------------------------------------------------

TEST(Online, UncappedMatchesGrahamListSchedule) {
  Rng rng(83);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst = generate_layered_dag(4, 4, 0.3,
                                               static_cast<int>(rng.uniform_int(2, 4)),
                                               {}, rng);
    const OnlineResult online =
        simulate_online_list(inst, /*memory_cap=*/-1, PriorityPolicy::kBottomLevel);
    ASSERT_TRUE(online.feasible);
    const Schedule graham =
        graham_list_schedule(inst, PriorityPolicy::kBottomLevel);
    EXPECT_EQ(online.schedule, graham) << "trial " << trial;
  }
}

TEST(Online, RespectsMemoryCap) {
  Rng rng(84);
  for (int trial = 0; trial < 8; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(6, 30));
    gp.m = 3;
    const Instance inst = generate_uniform(gp, rng);
    const OnlineResult r = simulate_online_rls(inst, Fraction(3));
    ASSERT_TRUE(r.feasible) << trial;
    EXPECT_TRUE(validate_schedule(inst, r.schedule,
                                  {.require_timed = true, .memory_cap = r.cap})
                    .ok);
    const SimReport report =
        simulate_schedule(inst, r.schedule, {.memory_cap = r.cap});
    EXPECT_TRUE(report.ok) << report.violation;
  }
}

TEST(Online, StuckWhenNothingFits) {
  const Instance inst = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const OnlineResult r = simulate_online_list(inst, 10);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.stuck_task.has_value());
}

TEST(Online, RlsCapMatchesDeltaTimesLb) {
  const Instance inst = make_instance({1, 1}, {4, 4}, 2);
  // LB = max(4, 8/2) = 4; Delta = 3/2 -> cap = 6.
  const OnlineResult r = simulate_online_rls(inst, Fraction(3, 2));
  EXPECT_EQ(r.cap, 6);
}

}  // namespace
}  // namespace storesched
