// Tests for the shared worker-pool helper (common/parallel.hpp): worker
// sizing, dynamic claiming, and -- the part sanitizers care about -- the
// teardown ordering contract: every spawned worker is joined before
// run_worker_crew propagates anything, so no worker ever races the
// destruction of the crew's stack state (error slot, mutex, body).
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace storesched {
namespace {

TEST(ParallelWorkerCount, NeverOversubscribesJobs) {
  EXPECT_EQ(parallel_worker_count(/*jobs=*/1, /*threads=*/8), 1u);
  EXPECT_EQ(parallel_worker_count(2, 8), 2u);
  EXPECT_EQ(parallel_worker_count(100, 4), 4u);
  EXPECT_EQ(parallel_worker_count(0, 4), 1u);
  EXPECT_GE(parallel_worker_count(100, 0), 1u);  // hardware_concurrency path
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kJobs = 500;
  std::vector<std::atomic<int>> hits(kJobs);
  parallel_for(kJobs, /*threads=*/4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, FirstExceptionPropagatesAfterAllWorkersJoin) {
  // One job throws; the others must still be joined (not detached, not
  // terminated) before the exception reaches the caller. Pinned by counting
  // completed bodies *after* the catch: a crew that unwound before joining
  // would let slow workers finish after this point (a use-after-free under
  // TSan/ASan, a flaky count here).
  constexpr std::size_t kJobs = 8;
  std::atomic<int> completed{0};
  bool caught = false;
  try {
    parallel_for(kJobs, /*threads=*/4, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("job 0 failed");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "job 0 failed");
  }
  ASSERT_TRUE(caught);
  // Every non-throwing job that *started* has fully completed by now. The
  // cancel flag stops unclaimed jobs, so completed < kJobs - 1 is fine; the
  // invariant is that the count is final -- no worker is still running.
  const int at_catch = completed.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(completed.load(), at_catch)
      << "a worker outlived run_worker_crew's return";
}

TEST(RunWorkerCrew, JoinsSlowWorkersBeforeRethrow) {
  // Deterministic shutdown-ordering regression: worker 0 throws
  // immediately while workers 1..k are still asleep. The crew must join
  // them all before rethrowing, so by the time the catch runs every body
  // has executed its final statement.
  constexpr unsigned kWorkers = 4;
  std::atomic<int> finished{0};
  bool caught = false;
  try {
    run_worker_crew(kWorkers, [&](unsigned id) {
      if (id == 0) throw std::logic_error("worker 0 crashed during shutdown");
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::logic_error&) {
    caught = true;
  }
  ASSERT_TRUE(caught);
  EXPECT_EQ(finished.load(), static_cast<int>(kWorkers) - 1)
      << "rethrow happened before every worker was joined";
}

TEST(RunWorkerCrew, CapturesFirstExceptionOnly) {
  // All workers throw; exactly one exception (some worker's) surfaces and
  // the crew still joins everyone.
  constexpr unsigned kWorkers = 4;
  std::atomic<int> threw{0};
  try {
    run_worker_crew(kWorkers, [&](unsigned id) {
      threw.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("worker " + std::to_string(id));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("worker ", 0), 0u) << e.what();
  }
  EXPECT_EQ(threw.load(), static_cast<int>(kWorkers));
}

TEST(RunWorkerCrew, SingleWorkerRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  run_worker_crew(1, [&](unsigned id) {
    EXPECT_EQ(id, 0u);
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

// --- the persistent crew behind the serving tier ------------------------

TEST(WorkerCrew, ReusesThreadsAcrossSubmits) {
  // The whole point of the persistent variant: a service submitting one
  // job per request must not pay a thread spawn per request. Pinned by
  // observing that hundreds of jobs run on at most workers() distinct
  // threads.
  WorkerCrew crew(2);
  ASSERT_EQ(crew.workers(), 2u);
  std::mutex mu;
  std::set<std::thread::id> seen;
  for (int round = 0; round < 10; ++round) {
    for (int j = 0; j < 50; ++j) {
      crew.submit([&] {
        const std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      });
    }
    crew.drain();
  }
  EXPECT_LE(seen.size(), 2u);
  EXPECT_GE(seen.size(), 1u);
}

TEST(WorkerCrew, SubmitNeverRunsOnTheCallerThread) {
  // Even a one-worker crew must hand jobs to a real worker: the serving
  // tier's event loop submits from its socket thread and relies on
  // submit() returning immediately.
  WorkerCrew crew(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  crew.submit([&] { body_thread = std::this_thread::get_id(); });
  crew.drain();
  EXPECT_NE(body_thread, caller);
}

TEST(WorkerCrew, DrainWaitsForEveryJob) {
  WorkerCrew crew(3);
  std::atomic<int> done{0};
  for (int j = 0; j < 200; ++j) {
    crew.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  crew.drain();
  EXPECT_EQ(done.load(), 200);
  EXPECT_EQ(crew.pending(), 0u);
}

TEST(WorkerCrew, PoisonedJobSurfacesOnDrainAndCrewKeepsServing) {
  // One throwing job must not kill the crew (a service keeps serving after
  // a bad request): drain() rethrows the first captured exception exactly
  // once, and the crew accepts and runs new work afterwards.
  WorkerCrew crew(2);
  std::atomic<int> ran{0};
  crew.submit([] { throw std::runtime_error("poisoned job"); });
  crew.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  try {
    crew.drain();
    FAIL() << "expected the poisoned job to rethrow on drain";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "poisoned job");
  }
  crew.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  crew.drain();  // the error slot was cleared by the first drain
  EXPECT_EQ(ran.load(), 2);
}

TEST(WorkerCrew, SubmitAfterShutdownThrows) {
  WorkerCrew crew(1);
  std::atomic<int> done{0};
  crew.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  crew.shutdown();
  EXPECT_EQ(done.load(), 1);  // queued work finishes before the join
  EXPECT_THROW(crew.submit([] {}), std::logic_error);
  crew.shutdown();  // idempotent
}

TEST(WorkerCrew, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    WorkerCrew crew(2);
    for (int j = 0; j < 64; ++j) {
      crew.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace storesched
