// Tests for the runtime invariant auditor (core/audit.hpp): clean results
// from every solver family audit clean, and each class of corruption --
// structural, objective, bound, extras-channel -- is detected. The auditor
// is the STORESCHED_AUDIT production self-check, so these tests are its own
// regression net: a check that silently stops firing would let a future
// solver bug ship unnoticed.
#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/instance.hpp"
#include "common/schedule.hpp"
#include "core/solver.hpp"

namespace storesched {
namespace {

Instance small_indep() {
  return Instance({{4, 2}, {3, 5}, {2, 1}, {5, 3}, {1, 4}, {2, 2}}, 2);
}

TEST(Audit, CleanResultsPassEveryFamily) {
  const Instance inst = small_indep();
  for (const char* spec : {"graham:lpt", "sbo:lpt,delta=3/2",
                           "rls:bottom,delta=3", "tri:spt,delta=3",
                           "pareto:exact"}) {
    const auto solver = make_solver(spec);
    const SolveResult r = solver->solve(inst);
    ASSERT_TRUE(r.feasible) << spec;
    const AuditReport report = audit_schedule(inst, r.schedule, r);
    EXPECT_TRUE(report.ok()) << spec << ": " << report.to_string();
  }
}

TEST(Audit, CleanConstrainedResultPassesWithCapacity) {
  const Instance inst = small_indep();
  const auto solver = make_solver("constrained:rls");
  SolveOptions opts;
  opts.memory_capacity = inst.total_storage();  // generous: always feasible
  const SolveResult r = solver->solve(inst, opts);
  ASSERT_TRUE(r.feasible);
  AuditOptions aopts;
  aopts.memory_capacity = opts.memory_capacity;
  const AuditReport report = audit_schedule(inst, r.schedule, r, aopts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Audit, DetectsOverlapCorruption) {
  const Instance inst = small_indep();
  SolveResult r = make_solver("graham:lpt")->solve(inst);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.schedule.timed());
  // Pile task 1 onto task 0's slot: same processor, same start.
  r.schedule.assign(1, r.schedule.proc(0), r.schedule.start(0));
  const AuditReport report = audit_schedule(inst, r.schedule, r);
  EXPECT_FALSE(report.ok());
}

TEST(Audit, DetectsForeignScheduleShape) {
  // Schedule::assign already rejects out-of-range processors, so the
  // reachable corruption is a result carrying a schedule solved for a
  // different instance -- wrong n or m must fail the shape check.
  const Instance inst = small_indep();
  const Instance other({{4, 2}, {3, 5}, {2, 1}, {5, 3}, {1, 4}, {2, 2}}, 3);
  SolveResult r = make_solver("graham:lpt")->solve(other);
  ASSERT_TRUE(r.feasible);
  const AuditReport report = audit_schedule(inst, r.schedule, r);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("does not match the instance"),
            std::string::npos)
      << report.to_string();
}

TEST(Audit, DetectsObjectiveMismatch) {
  const Instance inst = small_indep();
  SolveResult r = make_solver("graham:lpt")->solve(inst);
  r.objectives.cmax += 1;
  const AuditReport report = audit_schedule(inst, r.schedule, r);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("do not reproduce"), std::string::npos)
      << report.to_string();
}

TEST(Audit, DetectsViolatedValueBound) {
  const Instance inst = small_indep();
  SolveResult r = make_solver("sbo:lpt,delta=3/2")->solve(inst);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.cmax_bound.has_value());
  // A bound below the measured value must fire (also breaks the sbo
  // cmax_bound == (1+Delta)*C cross-check; either finding fails the audit).
  SolveResult tampered = r;
  tampered.cmax_bound = Fraction(0);
  EXPECT_FALSE(audit_schedule(inst, tampered.schedule, tampered).ok());
}

TEST(Audit, EnforcesHardCapacity) {
  const Instance inst = small_indep();
  const SolveResult r = make_solver("graham:lpt")->solve(inst);
  ASSERT_TRUE(r.feasible);
  AuditOptions tight;
  tight.memory_capacity = r.objectives.mmax - 1;
  EXPECT_FALSE(audit_schedule(inst, r.schedule, r, tight).ok());
  AuditOptions exact;
  exact.memory_capacity = r.objectives.mmax;
  EXPECT_TRUE(audit_schedule(inst, r.schedule, r, exact).ok());
}

TEST(Audit, DetectsRlsExtrasCorruption) {
  const Instance inst = small_indep();
  SolveResult r = make_solver("rls:bottom,delta=3")->solve(inst);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.rls.has_value());
  SolveResult bad_count = r;
  bad_count.rls->marked_count += 1;
  EXPECT_FALSE(audit_schedule(inst, bad_count.schedule, bad_count).ok());
  SolveResult bad_cap = r;
  bad_cap.rls->cap = bad_cap.rls->cap + Fraction(1);
  EXPECT_FALSE(audit_schedule(inst, bad_cap.schedule, bad_cap).ok());
}

TEST(Audit, DetectsSboIngredientCorruption) {
  const Instance inst = small_indep();
  SolveResult r = make_solver("sbo:lpt,delta=3/2")->solve(inst);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.sbo.has_value());
  r.sbo->c_ingredient += 1;
  EXPECT_FALSE(audit_schedule(inst, r.schedule, r).ok());
}

TEST(Audit, DetectsParetoFrontCorruption) {
  const Instance inst = small_indep();
  SolveResult r = make_solver("pareto:exact")->solve(inst);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.pareto.has_value());
  ASSERT_FALSE(r.pareto->front.empty());
  r.pareto->front.front().value.cmax += 1;
  EXPECT_FALSE(audit_schedule(inst, r.schedule, r).ok());
}

TEST(Audit, InfeasibleResultsMustExplainThemselves) {
  const Instance inst = small_indep();
  SolveResult silent;  // feasible == false, diagnostics empty
  EXPECT_FALSE(audit_schedule(inst, silent.schedule, silent).ok());
  SolveResult explained;
  explained.diagnostics = "capacity below the storage lower bound";
  EXPECT_TRUE(audit_schedule(inst, explained.schedule, explained).ok());
}

TEST(Audit, EnabledMatchesEnvironment) {
  // audit_enabled() is read once per process (same contract as the engine
  // A/B toggles), so assert it agrees with whatever environment this test
  // process was launched with -- the Debug CI leg runs the whole suite
  // under STORESCHED_AUDIT=1 and plain runs leave it unset.
  const char* value = std::getenv("STORESCHED_AUDIT");
  const bool expected = value != nullptr && *value != '\0' &&
                        std::string(value) != "0";
  EXPECT_EQ(audit_enabled(), expected);
}

}  // namespace
}  // namespace storesched
