// Failure-injection tests: mutate known-good schedules and require the
// validator and the discrete-event simulator to agree on acceptance, and to
// reject every corrupted variant they should reject. This guards the two
// independent verification paths against silently diverging.
#include <gtest/gtest.h>

#include "algorithms/graham.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/rls.hpp"
#include "sim/event_sim.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

/// Applies one random corruption to a timed schedule. Returns a label for
/// diagnostics.
std::string corrupt(Schedule& sched, const Instance& inst, Rng& rng) {
  const auto victim =
      static_cast<TaskId>(rng.uniform_int(0, static_cast<std::int64_t>(inst.n()) - 1));
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      // Shift a start time earlier (overlap / precedence hazard).
      const Time cur = sched.start(victim);
      const Time shift = rng.uniform_int(1, std::max<Time>(2, cur + 5));
      sched.assign(victim, sched.proc(victim), std::max<Time>(0, cur - shift));
      return "start-shift";
    }
    case 1: {
      // Move a task to another processor at the same time (overlap hazard).
      const ProcId q =
          static_cast<ProcId>(rng.uniform_int(0, inst.m() - 1));
      sched.assign(victim, q, sched.start(victim));
      return "proc-move";
    }
    default: {
      // Pile everything of one processor onto time 0 (gross overlap).
      for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
        if (sched.proc(i) == sched.proc(victim)) {
          sched.assign(i, sched.proc(i), 0);
        }
      }
      return "pile-up";
    }
  }
}

TEST(FuzzValidation, ValidatorAndSimulatorAgreeOnMutants) {
  Rng rng(151);
  int rejected = 0;
  int accepted = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const bool dag_case = rng.bernoulli(0.5);
    const Instance inst =
        dag_case ? generate_dag_by_name("layered", 30, 3, {}, rng)
                 : generate_uniform({.n = 20,
                                     .m = 3,
                                     .p_min = 1,
                                     .p_max = 20,
                                     .s_min = 1,
                                     .s_max = 20},
                                    rng);
    Schedule sched = graham_list_schedule(inst, PriorityPolicy::kBottomLevel);
    const std::string kind = corrupt(sched, inst, rng);

    const bool validator_ok = validate_schedule(inst, sched,
                                                {.require_timed = true})
                                  .ok;
    const bool simulator_ok = simulate_schedule(inst, sched).ok;
    EXPECT_EQ(validator_ok, simulator_ok)
        << "divergence on " << kind << " mutant, trial " << trial;
    (validator_ok ? accepted : rejected) += 1;
  }
  // The corruptions are aggressive: a healthy harness rejects most of them
  // (a few mutants happen to remain legal, e.g. moving onto an idle slot).
  EXPECT_GT(rejected, 25);
}

TEST(FuzzValidation, UncorruptedSchedulesAlwaysAccepted) {
  Rng rng(152);
  for (int trial = 0; trial < 30; ++trial) {
    const Instance inst = generate_dag_by_name(
        trial % 2 ? "random" : "cholesky", 50, 4, {}, rng);
    const RlsResult r =
        rls_schedule(inst, Fraction(3), PriorityPolicy::kBottomLevel);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(validate_schedule(inst, r.schedule, {.require_timed = true}).ok);
    EXPECT_TRUE(simulate_schedule(inst, r.schedule).ok);
  }
}

TEST(FuzzValidation, MetricAgreementUnderRandomValidSchedules) {
  // Build arbitrary *valid* timed schedules (random assignment, serialized
  // back-to-back) and require Schedule arithmetic == simulator replay on
  // every metric.
  Rng rng(153);
  for (int trial = 0; trial < 40; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    gp.m = static_cast<int>(rng.uniform_int(1, 6));
    const Instance inst = generate_uniform(gp, rng);
    Schedule assignment(inst);
    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      assignment.assign(
          i, static_cast<ProcId>(rng.uniform_int(0, inst.m() - 1)));
    }
    const Schedule timed = serialize_assignment(inst, assignment);
    const SimReport report = simulate_schedule(inst, timed);
    ASSERT_TRUE(report.ok) << report.violation;
    EXPECT_EQ(report.makespan, cmax(inst, timed));
    EXPECT_EQ(report.peak_memory, mmax(inst, timed));
    EXPECT_EQ(report.sum_completion, sum_completion_times(inst, timed));
  }
}

}  // namespace
}  // namespace storesched
