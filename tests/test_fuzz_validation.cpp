// Failure-injection tests: mutate known-good schedules and require the
// validator and the discrete-event simulator to agree on acceptance, and to
// reject every corrupted variant they should reject. This guards the two
// independent verification paths against silently diverging.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algorithms/graham.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "core/rls.hpp"
#include "core/stream.hpp"
#include "sim/event_sim.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

/// Applies one random corruption to a timed schedule. Returns a label for
/// diagnostics.
std::string corrupt(Schedule& sched, const Instance& inst, Rng& rng) {
  const auto victim =
      static_cast<TaskId>(rng.uniform_int(0, static_cast<std::int64_t>(inst.n()) - 1));
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      // Shift a start time earlier (overlap / precedence hazard).
      const Time cur = sched.start(victim);
      const Time shift = rng.uniform_int(1, std::max<Time>(2, cur + 5));
      sched.assign(victim, sched.proc(victim), std::max<Time>(0, cur - shift));
      return "start-shift";
    }
    case 1: {
      // Move a task to another processor at the same time (overlap hazard).
      const ProcId q =
          static_cast<ProcId>(rng.uniform_int(0, inst.m() - 1));
      sched.assign(victim, q, sched.start(victim));
      return "proc-move";
    }
    default: {
      // Pile everything of one processor onto time 0 (gross overlap).
      for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
        if (sched.proc(i) == sched.proc(victim)) {
          sched.assign(i, sched.proc(i), 0);
        }
      }
      return "pile-up";
    }
  }
}

TEST(FuzzValidation, ValidatorAndSimulatorAgreeOnMutants) {
  Rng rng(151);
  int rejected = 0;
  int accepted = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const bool dag_case = rng.bernoulli(0.5);
    const Instance inst =
        dag_case ? generate_dag_by_name("layered", 30, 3, {}, rng)
                 : generate_uniform({.n = 20,
                                     .m = 3,
                                     .p_min = 1,
                                     .p_max = 20,
                                     .s_min = 1,
                                     .s_max = 20},
                                    rng);
    Schedule sched = graham_list_schedule(inst, PriorityPolicy::kBottomLevel);
    const std::string kind = corrupt(sched, inst, rng);

    const bool validator_ok = validate_schedule(inst, sched,
                                                {.require_timed = true})
                                  .ok;
    const bool simulator_ok = simulate_schedule(inst, sched).ok;
    EXPECT_EQ(validator_ok, simulator_ok)
        << "divergence on " << kind << " mutant, trial " << trial;
    (validator_ok ? accepted : rejected) += 1;
  }
  // The corruptions are aggressive: a healthy harness rejects most of them
  // (a few mutants happen to remain legal, e.g. moving onto an idle slot).
  EXPECT_GT(rejected, 25);
}

TEST(FuzzValidation, UncorruptedSchedulesAlwaysAccepted) {
  Rng rng(152);
  for (int trial = 0; trial < 30; ++trial) {
    const Instance inst = generate_dag_by_name(
        trial % 2 ? "random" : "cholesky", 50, 4, {}, rng);
    const RlsResult r =
        rls_schedule(inst, Fraction(3), PriorityPolicy::kBottomLevel);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(validate_schedule(inst, r.schedule, {.require_timed = true}).ok);
    EXPECT_TRUE(simulate_schedule(inst, r.schedule).ok);
  }
}

TEST(FuzzValidation, MetricAgreementUnderRandomValidSchedules) {
  // Build arbitrary *valid* timed schedules (random assignment, serialized
  // back-to-back) and require Schedule arithmetic == simulator replay on
  // every metric.
  Rng rng(153);
  for (int trial = 0; trial < 40; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    gp.m = static_cast<int>(rng.uniform_int(1, 6));
    const Instance inst = generate_uniform(gp, rng);
    Schedule assignment(inst);
    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      assignment.assign(
          i, static_cast<ProcId>(rng.uniform_int(0, inst.m() - 1)));
    }
    const Schedule timed = serialize_assignment(inst, assignment);
    const SimReport report = simulate_schedule(inst, timed);
    ASSERT_TRUE(report.ok) << report.violation;
    EXPECT_EQ(report.makespan, cmax(inst, timed));
    EXPECT_EQ(report.peak_memory, mmax(inst, timed));
    EXPECT_EQ(report.sum_completion, sum_completion_times(inst, timed));
  }
}

// --- Wire-format crash regressions (tools/fuzz_jsonl.cpp) -------------------
// Each test pins a bug the fuzz target surfaced; the same bytes live in
// tools/fuzz_corpus/ so the fuzz_jsonl_corpus ctest replays them under every
// sanitizer configuration.

TEST(FuzzRegression, WeightSumOverflowRejected) {
  // tools/fuzz_corpus/reject_weight_sum_overflow.jsonl: two INT64_MAX task
  // weights made Instance::compute_aggregates() wrap its running totals --
  // signed-overflow UB reachable from a single untrusted line. The sums now
  // reject overflow explicitly.
  EXPECT_THROW(
      instance_from_jsonl(
          R"({"m":2,"tasks":[[9223372036854775807,1],[9223372036854775807,1]]})",
          1),
      std::runtime_error);
  EXPECT_THROW(
      instance_from_jsonl(
          R"({"m":2,"tasks":[[1,9223372036854775807],[1,9223372036854775807]]})",
          1),
      std::runtime_error);
  // Same guard on the direct-construction path (invalid_argument there; the
  // wire layer rewraps it as runtime_error with the line number).
  constexpr Time kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(Instance({{kMax, 1}, {kMax, 1}}, 2), std::invalid_argument);
}

TEST(FuzzRegression, MaxWeightBoundaryStillAccepted) {
  // tools/fuzz_corpus/max_weight_single.jsonl: the overflow guard must not
  // reject the representable boundary itself.
  constexpr Time kMax = std::numeric_limits<std::int64_t>::max();
  const Instance inst = instance_from_jsonl(
      R"({"m":1,"tasks":[[9223372036854775807,9223372036854775807]]})", 1);
  EXPECT_EQ(inst.total_work(), kMax);
  EXPECT_EQ(inst.total_storage(), kMax);
  EXPECT_EQ(inst.max_p(), kMax);
  // Round-trip stays canonical at the boundary.
  const std::string wire = instance_to_jsonl(inst);
  EXPECT_EQ(instance_to_jsonl(instance_from_jsonl(wire, 1)), wire);
}

TEST(FuzzRegression, RejectionsAreAlwaysRuntimeErrors) {
  // The fuzz contract: malformed bytes throw std::runtime_error, never any
  // other type (and never crash). Pin one representative per corpus reject_*
  // entry.
  const char* rejects[] = {
      R"({"m":0,"tasks":[[1,1]]})",                    // reject_bad_m
      R"({"m":2,"tasks":[[1,1],[1,-3]]})",            // reject_negative_weight
      R"({"m":2,"tasks":[[1,1],[2,2]],"edges":[[0,1],[1,0]]})",  // cycle
      R"({"m":2,"tasks":[[99999999999999999999,1]]})",  // int overflow
      R"({"m":2,"tasks":[[1,1]],"bogus":3})",         // reject_unknown_key
      R"({"m":2,"tasks":[[1,1]]} trailing)",          // reject_trailing
      R"(not json at all)",                           // reject_not_json
  };
  for (const char* line : rejects) {
    EXPECT_THROW(instance_from_jsonl(line, 1), std::runtime_error) << line;
  }
}

// ---------------------------------------------------------------------------
// The error-record wire (core/stream.hpp): the second parsing surface a
// serving tier exposes -- resumed runs and dashboards read these lines back.
// ---------------------------------------------------------------------------

TEST(ErrorRecordWire, RoundTripsToACanonicalFixpoint) {
  std::vector<StreamError> records;
  records.push_back({4, 0, StreamErrorCategory::kSolve, 3, "injected fault"});
  records.push_back({20, 21, StreamErrorCategory::kSource, 1,
                     "instance_from_jsonl: line 21: unterminated key"});
  records.push_back(
      {0, 0, StreamErrorCategory::kSink, 2, "a \"quoted\"\ncause\twith \x07"});
  records.push_back({0, 0, StreamErrorCategory::kSolve, 1, ""});
  for (const StreamError& record : records) {
    const std::string wire = stream_error_to_jsonl(record);
    const StreamError back = stream_error_from_jsonl(wire);
    EXPECT_EQ(back.index, record.index) << wire;
    EXPECT_EQ(back.line, record.line) << wire;
    EXPECT_EQ(back.category, record.category) << wire;
    EXPECT_EQ(back.attempts, record.attempts) << wire;
    EXPECT_EQ(back.what, record.what) << wire;
    EXPECT_EQ(stream_error_to_jsonl(back), wire) << "not a fixpoint";
  }
  // "line" appears on the wire only when the source tracked a position.
  EXPECT_EQ(stream_error_to_jsonl(records[0]).find("\"line\""),
            std::string::npos);
  EXPECT_NE(stream_error_to_jsonl(records[1]).find("\"line\":21"),
            std::string::npos);
}

TEST(ErrorRecordWire, AcceptsAnyKeyOrder) {
  const StreamError back = stream_error_from_jsonl(
      R"({"what":"x","attempts":2,"category":"sink","error":true,"index":7})");
  EXPECT_EQ(back.index, 7u);
  EXPECT_EQ(back.category, StreamErrorCategory::kSink);
  EXPECT_EQ(back.attempts, 2);
  EXPECT_EQ(back.what, "x");
}

TEST(ErrorRecordWire, RejectionsAreAlwaysRuntimeErrors) {
  const char* rejects[] = {
      "",                                                          // empty
      R"({"index":1,"error":true,"category":"oops","attempts":1,"what":"x"})",
      R"({"index":1,"error":false,"category":"solve","attempts":1,"what":"x"})",
      R"({"index":1,"error":true,"category":"solve","what":"x"})",  // no attempts
      R"({"error":true,"category":"solve","attempts":1,"what":"x"})",  // no index
      R"({"index":1,"error":true,"category":"solve","attempts":0,"what":"x"})",
      R"({"index":1,"error":true,"category":"solve","attempts":1000001,"what":"x"})",
      R"({"index":01,"error":true,"category":"solve","attempts":1,"what":"x"})",
      R"({"index":1,"error":true,"category":"solve","attempts":1,"attempts":2,"what":"x"})",
      R"({"index":1,"error":true,"category":"solve","attempts":1,"what":"x","zap":1})",
      R"({"index":1,"error":true,"category":"solve","attempts":1,"what":"x"} junk)",
      R"({"index":1,"error":true,"category":"solve","attempts":1,"what":"\q"})",
      R"({"index":1,"error":true,"category":"solve","attempts":1,"what":"\u00ff"})",
      R"({"index":1,"error":true,"category":"solve","attempts":1,"what":"open)",
      R"({"index":1,"error":true,"category":"solve","line":0,"attempts":1,"what":"x"})",
      R"({ "index":1,"error":true,"category":"solve","attempts":1,"what":"x"})",
  };
  for (const char* line : rejects) {
    EXPECT_THROW(stream_error_from_jsonl(line), std::runtime_error) << line;
  }
  // The raw-control-character reject needs a real 0x07 byte, which a raw
  // string literal cannot hold legibly.
  std::string control =
      R"({"index":1,"error":true,"category":"solve","attempts":1,"what":"x"})";
  control[control.size() - 3] = '\x07';
  EXPECT_THROW(stream_error_from_jsonl(control), std::runtime_error);
}

}  // namespace
}  // namespace storesched
