// Tests for the conditional-task-graph extension (paper Section 7 future
// work): scenario expansion, Monte-Carlo schedule evaluation, conservative
// RLS scheduling.
#include "core/conditional.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

ConditionalInstance small_conditional() {
  // 6 tasks, one branch: tasks {2,3} vs {4,5}; tasks 0,1 unconditional.
  ConditionalInstance cond;
  cond.base = make_instance({5, 4, 6, 6, 2, 2}, {3, 3, 5, 5, 1, 1}, 2);
  Branch br;
  br.arm_a = {2, 3};
  br.arm_b = {4, 5};
  br.prob_a = 0.5;
  cond.branches.push_back(br);
  return cond;
}

TEST(Conditional, ValidateCatchesBadBranches) {
  ConditionalInstance cond = small_conditional();
  EXPECT_NO_THROW(cond.validate());

  ConditionalInstance bad_prob = small_conditional();
  bad_prob.branches[0].prob_a = 1.5;
  EXPECT_THROW(bad_prob.validate(), std::invalid_argument);

  ConditionalInstance overlap = small_conditional();
  overlap.branches[0].arm_b = {2};  // appears in both arms
  EXPECT_THROW(overlap.validate(), std::invalid_argument);

  ConditionalInstance out_of_range = small_conditional();
  out_of_range.branches[0].arm_a.push_back(99);
  EXPECT_THROW(out_of_range.validate(), std::invalid_argument);
}

TEST(Conditional, ExpandScenarioZeroesSkippedArm) {
  const ConditionalInstance cond = small_conditional();
  const Instance arm_a = expand_scenario(cond, std::vector<bool>{true});
  EXPECT_EQ(arm_a.task(2).p, 6);
  EXPECT_EQ(arm_a.task(4).p, 0);   // arm_b skipped
  EXPECT_EQ(arm_a.task(4).s, 1);   // code stays resident
  const Instance arm_b = expand_scenario(cond, std::vector<bool>{false});
  EXPECT_EQ(arm_b.task(2).p, 0);
  EXPECT_EQ(arm_b.task(4).p, 2);
  EXPECT_EQ(arm_b.total_storage(), cond.base.total_storage());
  EXPECT_THROW(expand_scenario(cond, std::vector<bool>{}),
               std::invalid_argument);
}

TEST(Conditional, EvaluationBracketsTheScenarios) {
  const ConditionalInstance cond = small_conditional();
  const RlsResult r = schedule_conditional(cond, Fraction(3));
  ASSERT_TRUE(r.feasible);

  Rng rng(131);
  const ConditionalEvaluation eval =
      evaluate_conditional(cond, r.schedule, 500, rng);
  // Every sampled makespan is bounded by the all-tasks worst case.
  EXPECT_LE(eval.makespan.max, static_cast<double>(eval.worst_case));
  EXPECT_GT(eval.makespan.min, 0.0);
  // Storage is scenario-independent and equals the schedule's Mmax.
  EXPECT_EQ(eval.mmax, mmax(cond.base, r.schedule));
}

TEST(Conditional, DegenerateProbabilitiesPinTheScenario) {
  ConditionalInstance cond = small_conditional();
  cond.branches[0].prob_a = 1.0;  // arm_a always runs
  const RlsResult r = schedule_conditional(cond, Fraction(3));
  ASSERT_TRUE(r.feasible);
  Rng rng(132);
  const ConditionalEvaluation eval =
      evaluate_conditional(cond, r.schedule, 50, rng);
  // Deterministic scenario: zero variance.
  EXPECT_DOUBLE_EQ(eval.makespan.min, eval.makespan.max);
  // The pinned makespan is the latest completion among tasks 0..3.
  Time expect = 0;
  for (const TaskId i : {0, 1, 2, 3}) {
    expect = std::max(expect, r.schedule.start(i) + cond.base.task(i).p);
  }
  EXPECT_DOUBLE_EQ(eval.makespan.max, static_cast<double>(expect));
}

TEST(Conditional, NoBranchesMeansDeterministicEvaluation) {
  ConditionalInstance cond;
  cond.base = make_instance({3, 4, 5}, {1, 1, 1}, 2);
  const RlsResult r = schedule_conditional(cond, Fraction(3));
  ASSERT_TRUE(r.feasible);
  Rng rng(133);
  const ConditionalEvaluation eval =
      evaluate_conditional(cond, r.schedule, 20, rng);
  EXPECT_DOUBLE_EQ(eval.makespan.max,
                   static_cast<double>(cmax(cond.base, r.schedule)));
  EXPECT_DOUBLE_EQ(eval.makespan.min, eval.makespan.max);
}

TEST(Conditional, GeneratorProducesValidBranches) {
  Rng rng(134);
  const ConditionalInstance cond = generate_conditional(80, 4, 3, rng);
  EXPECT_NO_THROW(cond.validate());
  EXPECT_GE(cond.branches.size(), 1u);
  EXPECT_LE(cond.branches.size(), 4u);
  for (const Branch& br : cond.branches) {
    EXPECT_FALSE(br.arm_a.empty());
    EXPECT_EQ(br.arm_a.size(), br.arm_b.size());
    EXPECT_GE(br.prob_a, 0.25);
    EXPECT_LE(br.prob_a, 0.75);
  }

  // End to end: schedule conservatively, evaluate, everything consistent.
  const RlsResult r = schedule_conditional(cond, Fraction(3));
  ASSERT_TRUE(r.feasible);
  const auto vr =
      validate_schedule(cond.base, r.schedule, {.require_timed = true});
  ASSERT_TRUE(vr.ok) << vr.error;
  Rng eval_rng(135);
  const ConditionalEvaluation eval =
      evaluate_conditional(cond, r.schedule, 200, eval_rng);
  EXPECT_LE(eval.makespan.mean, static_cast<double>(eval.worst_case));
  EXPECT_TRUE(Fraction(eval.mmax) <= r.cap);
}

TEST(Conditional, EvaluationRejectsBadInputs) {
  const ConditionalInstance cond = small_conditional();
  Schedule untimed(cond.base);
  Rng rng(136);
  EXPECT_THROW(evaluate_conditional(cond, untimed, 10, rng),
               std::invalid_argument);
  const RlsResult r = schedule_conditional(cond, Fraction(3));
  EXPECT_THROW(evaluate_conditional(cond, r.schedule, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace storesched
