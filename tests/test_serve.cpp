// Tests for the serving tier (src/serve/): the SLO router's selection
// rules against a deterministic injected cost table, the JSONL line
// framer's oversized/partial handling, the request wire grammar, and the
// server itself over real unix-domain sockets -- admission, windows,
// deadlines, cancel, drain, and fault injection via the serve.* failpoint
// sites.
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "storage/result_cache.hpp"
#include "storage/shm_store.hpp"
#include "storage/wire_format.hpp"

namespace storesched {
namespace {

// ---------------------------------------------------------------- router

void seed(Router& router, const std::vector<double>& costs, double overall) {
  for (std::size_t r = 0; r < costs.size(); ++r) router.seed_cost(r, costs[r]);
  router.seed_overall(overall);
}

TEST(ServeRouter, PicksCheapestRungMeetingSlo) {
  // Costs 100 / 10 / 1 ms; with a 50 ms SLO and the whole ladder
  // preferred, two rungs qualify and the cheapest (rung 2) wins.
  Router router({"a", "b", "c"});
  seed(router, {100, 10, 1}, 0.0);
  const RouteDecision d =
      router.route(/*slo_ms=*/50, /*quality=*/2, /*queue_depth=*/0, 1);
  EXPECT_EQ(d.rung, 2u);
  EXPECT_EQ(d.spec, "c");
  EXPECT_TRUE(d.met_slo);
  EXPECT_FALSE(d.degraded);
}

TEST(ServeRouter, TiesBreakTowardBetterQuality) {
  Router router({"a", "b", "c"});
  seed(router, {5, 5, 5}, 0.0);
  const RouteDecision d = router.route(10, 2, 0, 1);
  EXPECT_EQ(d.rung, 0u);
  EXPECT_TRUE(d.met_slo);
}

TEST(ServeRouter, DegradesPastPreferredQualityWhenItMustAndFlagsIt) {
  // Only the best rung is preferred (quality = 0) but it cannot meet the
  // SLO; the router degrades to rung 1 and says so.
  Router router({"a", "b"});
  seed(router, {100, 1}, 0.0);
  const RouteDecision d = router.route(50, /*quality=*/0, 0, 1);
  EXPECT_EQ(d.rung, 1u);
  EXPECT_TRUE(d.met_slo);
  EXPECT_TRUE(d.degraded);
}

TEST(ServeRouter, QueueDelayTermDrivesDegradation) {
  // Rung 0 alone meets the SLO at an empty queue; five queued requests
  // draining at 10 ms each through one worker add 50 ms of predicted
  // wait, pushing the route down the ladder.
  Router router({"a", "b"});
  seed(router, {10, 1}, 10.0);
  const RouteDecision empty_queue = router.route(55, 0, /*queue_depth=*/0, 1);
  EXPECT_EQ(empty_queue.rung, 0u);
  EXPECT_DOUBLE_EQ(empty_queue.queue_delay_ms, 0.0);

  const RouteDecision busy = router.route(55, 0, /*queue_depth=*/5, 1);
  EXPECT_EQ(busy.rung, 1u);
  EXPECT_TRUE(busy.degraded);
  EXPECT_DOUBLE_EQ(busy.queue_delay_ms, 50.0);

  // More workers drain the same queue faster: the delay term shrinks and
  // the preferred rung fits again.
  const RouteDecision wide = router.route(55, 0, /*queue_depth=*/5, 5);
  EXPECT_EQ(wide.rung, 0u);
  EXPECT_DOUBLE_EQ(wide.queue_delay_ms, 10.0);
}

TEST(ServeRouter, NothingMeetsSloServesCheapestAnchorFlaggedOverSlo) {
  Router router({"a", "b", "c"});
  seed(router, {100, 40, 60}, 0.0);
  const RouteDecision d = router.route(/*slo_ms=*/10, 2, 0, 1);
  EXPECT_EQ(d.rung, 1u);  // cheapest of the whole ladder
  EXPECT_FALSE(d.met_slo);
}

TEST(ServeRouter, NoSloServesThePreferredRungDirectly) {
  Router router({"a", "b", "c"});
  seed(router, {100, 10, 1}, 0.0);
  const RouteDecision d = router.route(std::nullopt, /*quality=*/1, 99, 1);
  EXPECT_EQ(d.rung, 1u);
  EXPECT_TRUE(d.met_slo);
  EXPECT_FALSE(d.degraded);
}

TEST(ServeRouter, QualityClampsToTheLadder) {
  Router router({"a", "b"});
  seed(router, {5, 5}, 0.0);
  EXPECT_EQ(router.route(std::nullopt, /*quality=*/99, 0, 1).rung, 1u);
}

TEST(ServeRouter, ObserveIsAnEwma) {
  Router router({"a"}, RouterOptions{.ewma_alpha = 0.2, .initial_cost_ms = 1});
  EXPECT_DOUBLE_EQ(router.snapshot()[0].ewma_ms, 1.0);  // prior
  router.observe(0, 10);  // first sample replaces the prior outright
  EXPECT_DOUBLE_EQ(router.snapshot()[0].ewma_ms, 10.0);
  router.observe(0, 20);
  EXPECT_DOUBLE_EQ(router.snapshot()[0].ewma_ms, 0.2 * 20 + 0.8 * 10);
  EXPECT_EQ(router.snapshot()[0].served, 2u);
}

TEST(ServeRouter, RejectsBadConfig) {
  EXPECT_THROW(Router({}), std::invalid_argument);
  EXPECT_THROW(Router({"a"}, RouterOptions{.ewma_alpha = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(Router({"a"}, RouterOptions{.ewma_alpha = 1.5}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- framer

TEST(ServeFramer, SplitsPipelinedLinesAndKeepsThePartialTail) {
  LineFramer framer(64);
  const std::string bytes = "one\ntwo\r\nthr";
  framer.feed(bytes.data(), bytes.size());
  auto line = framer.next();
  ASSERT_TRUE(line);
  EXPECT_EQ(line->text, "one");
  line = framer.next();
  ASSERT_TRUE(line);
  EXPECT_EQ(line->text, "two");  // CR before LF is stripped
  EXPECT_FALSE(framer.next());
  EXPECT_EQ(framer.partial(), 3u);  // "thr" stays buffered, never delivered
  framer.feed("ee\n", 3);
  line = framer.next();
  ASSERT_TRUE(line);
  EXPECT_EQ(line->text, "three");
}

TEST(ServeFramer, ByteAtATimeFeedingChangesNothing) {
  LineFramer framer(64);
  const std::string bytes = "hello\nworld\n";
  for (const char c : bytes) framer.feed(&c, 1);
  EXPECT_EQ(framer.next()->text, "hello");
  EXPECT_EQ(framer.next()->text, "world");
  EXPECT_FALSE(framer.next());
}

TEST(ServeFramer, OversizedLineYieldsOneMarkerAndTheFramerRecovers) {
  LineFramer framer(8);
  const std::string bytes = "0123456789abcdef";  // 16 > 8, no newline yet
  framer.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(framer.next());  // still waiting for the terminator
  EXPECT_TRUE(framer.discarding());
  EXPECT_EQ(framer.partial(), 0u);  // discarded bytes are not buffered
  framer.feed("XX\nok\n", 6);
  auto line = framer.next();
  ASSERT_TRUE(line);
  EXPECT_TRUE(line->oversized);
  line = framer.next();
  ASSERT_TRUE(line);
  EXPECT_FALSE(line->oversized);
  EXPECT_EQ(line->text, "ok");
}

TEST(ServeFramer, MarkersInterleaveInArrivalOrder) {
  LineFramer framer(4);
  const std::string bytes = "ab\ntoolongline\ncd\n";
  framer.feed(bytes.data(), bytes.size());
  EXPECT_EQ(framer.next()->text, "ab");
  EXPECT_TRUE(framer.next()->oversized);
  EXPECT_EQ(framer.next()->text, "cd");
}

// -------------------------------------------------------------- protocol

TEST(ServeProtocol, RequestRoundTripsAsAFixpoint) {
  ServeRequest req;
  req.id = "r-1";
  req.instance = std::make_shared<Instance>(
      std::vector<Task>{{3, 1}, {2, 2}}, 2);
  req.slo_ms = 2.5;
  req.deadline_ms = 100;
  req.priority = ServePriority::kHigh;
  req.quality = 1;
  const std::string wire = serve_request_to_jsonl(req);
  const ServeRequest back = serve_request_from_jsonl(wire);
  EXPECT_EQ(back.id, "r-1");
  ASSERT_TRUE(back.is_solve());
  EXPECT_EQ(back.instance->n(), 2u);
  EXPECT_EQ(back.priority, ServePriority::kHigh);
  EXPECT_EQ(back.quality, 1u);
  ASSERT_TRUE(back.slo_ms);
  EXPECT_DOUBLE_EQ(*back.slo_ms, 2.5);
  EXPECT_EQ(serve_request_to_jsonl(back), wire);
}

TEST(ServeProtocol, ControlRequestsRoundTrip) {
  EXPECT_TRUE(serve_request_from_jsonl(R"({"statsz":true})").statsz);
  const ServeRequest cancel =
      serve_request_from_jsonl(R"({"id":"c","cancel":"r9"})");
  EXPECT_EQ(cancel.cancel_id, "r9");
  EXPECT_EQ(cancel.id, "c");
  EXPECT_FALSE(cancel.is_solve());
}

TEST(ServeProtocol, RefRequestsRoundTripAsAFixpoint) {
  ServeRequest req;
  req.id = "r-2";
  req.ref = 7;
  req.spec = "graham:lpt";
  const std::string wire = serve_request_to_jsonl(req);
  const ServeRequest back = serve_request_from_jsonl(wire);
  ASSERT_TRUE(back.is_solve());
  EXPECT_EQ(back.instance, nullptr);
  ASSERT_TRUE(back.ref);
  EXPECT_EQ(*back.ref, 7u);
  EXPECT_EQ(back.spec, "graham:lpt");
  EXPECT_EQ(serve_request_to_jsonl(back), wire);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  const auto reject = [](const std::string& line) {
    EXPECT_THROW(serve_request_from_jsonl(line), std::runtime_error) << line;
  };
  reject("");
  reject("not json");
  reject(R"({"instance":{"m":1,"tasks":[[1,1]]}} trailing)");
  reject(R"({"bogus":1})");
  reject(R"({"id":"a","id":"b","instance":{"m":1,"tasks":[[1,1]]}})");
  reject(R"({"id":"a"})");                      // solve without an instance
  reject(R"({"statsz":true,"spec":"graham:lpt"})");  // statsz + solve field
  reject(R"({"cancel":"x","slo_ms":5})");            // cancel + solve field
  reject(R"({"slo_ms":-1,"instance":{"m":1,"tasks":[[1,1]]}})");
  reject(R"({"priority":"urgent","instance":{"m":1,"tasks":[[1,1]]}})");
  reject(R"({"slo_ms":01,"instance":{"m":1,"tasks":[[1,1]]}})");
  reject(R"({"ref":0,"instance":{"m":1,"tasks":[[1,1]]}})");  // both sources
  reject(R"({"ref":1.5})");                      // fractional record index
  reject(R"({"statsz":true,"ref":0})");          // statsz + solve field
}

TEST(ServeProtocol, ResponseLinesCarryRoutingAndResultFields) {
  SolveResult result;
  result.feasible = true;
  result.objectives = {7, 4};
  ServeResponse response;
  response.id = "r-1";
  response.admission = ServeAdmission::kDegraded;
  response.spec = "graham:lpt";
  response.rung = 1;
  response.queue_ms = 0.25;
  response.solve_ms = 1.5;
  response.result = &result;
  const std::string line = serve_response_to_jsonl(response);
  EXPECT_NE(line.find(R"("id":"r-1")"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("admission":"degraded")"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("rung":1)"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("feasible":true)"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("cmax":7)"), std::string::npos) << line;

  ServeResponse error;
  error.ok = false;
  error.error = "bad \"stuff\"";
  const std::string error_line = serve_response_to_jsonl(error);
  EXPECT_NE(error_line.find(R"("ok":false)"), std::string::npos) << error_line;
  EXPECT_NE(error_line.find(R"(bad \"stuff\")"), std::string::npos)
      << error_line;
}

// ---------------------------------------------------------------- server

/// Minimal blocking JSONL client for the integration tests.
class TestClient {
 public:
  explicit TestClient(const std::string& unix_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, unix_path.c_str(), unix_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ADD_FAILURE() << "connect(" << unix_path << "): " << std::strerror(errno);
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size() && fd_ >= 0) {
      const auto n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        ADD_FAILURE() << "send: " << std::strerror(errno);
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  /// The next response line, or nullopt on EOF / timeout.
  std::optional<std::string> read_line(int timeout_ms = 10000) {
    for (;;) {
      const std::size_t nl = inbox_.find('\n');
      if (nl != std::string::npos) {
        std::string line = inbox_.substr(0, nl);
        inbox_.erase(0, nl + 1);
        return line;
      }
      pollfd p{};
      p.fd = fd_;
      p.events = POLLIN;
      const int ready = ::poll(&p, 1, timeout_ms);
      if (ready <= 0) return std::nullopt;  // timeout
      char buf[4096];
      const auto n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return std::nullopt;  // EOF or reset
      inbox_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string inbox_;
};

bool contains(const std::string& line, const std::string& token) {
  return line.find(token) != std::string::npos;
}

std::string socket_path(const std::string& name) {
  return ::testing::TempDir() + "storesched_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

ServeOptions base_options(const std::string& name) {
  ServeOptions options;
  options.unix_path = socket_path(name);
  options.ladder = {"graham:lpt"};
  options.threads = 2;
  return options;
}

constexpr const char* kInstance = R"({"m":2,"tasks":[[3,1],[2,2],[5,4]]})";

class ServeServerTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::clear_all(); }
};

TEST_F(ServeServerTest, RoundTripMatchesInProcessSolve) {
  ServeOptions options = base_options("roundtrip");
  options.ladder = {"sbo:lpt,delta=3/2"};
  ServeServer server(options);
  server.start();

  TestClient client(options.unix_path);
  client.send_line(std::string(R"({"id":"q","instance":)") + kInstance + "}");
  const auto line = client.read_line();
  ASSERT_TRUE(line);
  EXPECT_TRUE(contains(*line, R"("id":"q")")) << *line;
  EXPECT_TRUE(contains(*line, R"("ok":true)")) << *line;
  EXPECT_TRUE(contains(*line, R"("admission":"ok")")) << *line;

  // The served objectives are exactly the in-process solver's.
  const Instance inst(std::vector<Task>{{3, 1}, {2, 2}, {5, 4}}, 2);
  const SolveResult expected = make_solver("sbo:lpt,delta=3/2")->solve(inst);
  ASSERT_TRUE(expected.feasible);
  EXPECT_TRUE(contains(
      *line, "\"cmax\":" + std::to_string(expected.objectives.cmax)))
      << *line;
  EXPECT_TRUE(contains(
      *line, "\"mmax\":" + std::to_string(expected.objectives.mmax)))
      << *line;
  server.shutdown();
}

TEST_F(ServeServerTest, PipelinedRequestsEachGetTheirResponse) {
  ServeOptions options = base_options("pipeline");
  ServeServer server(options);
  server.start();

  TestClient client(options.unix_path);
  std::string burst;
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    burst += std::string(R"({"id":")") + std::to_string(i) +
             R"(","instance":)" + kInstance + "}\n";
  }
  client.send_raw(burst);  // one write, many requests
  std::vector<bool> seen(kRequests, false);
  for (int i = 0; i < kRequests; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line) << "response " << i << " missing";
    const std::size_t at = line->find(R"("id":")");
    ASSERT_NE(at, std::string::npos) << *line;
    const std::size_t end = line->find('"', at + 6);
    const int id = std::stoi(line->substr(at + 6, end - (at + 6)));
    EXPECT_FALSE(seen[static_cast<std::size_t>(id)]) << "duplicate " << id;
    seen[static_cast<std::size_t>(id)] = true;
    EXPECT_TRUE(contains(*line, R"("ok":true)")) << *line;
  }
  server.shutdown();
}

TEST_F(ServeServerTest, DeadlineExpiredInQueueAnswersInfeasibleNotADrop) {
  ServeOptions options = base_options("deadline");
  options.threads = 1;
  ServeServer server(options);
  server.start();
  // The worker stalls 50 ms per request, so the second request's 1 ms
  // budget is guaranteed to expire while it waits in the queue.
  failpoint::set("serve.solve", "delay(50)");

  TestClient client(options.unix_path);
  client.send_line(std::string(R"({"id":"slow","instance":)") + kInstance +
                   "}");
  client.send_line(std::string(R"({"id":"late","deadline_ms":1,"instance":)") +
                   kInstance + "}");
  std::optional<std::string> late;
  for (int i = 0; i < 2; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line);
    if (contains(*line, R"("id":"late")")) late = *line;
  }
  ASSERT_TRUE(late) << "the expired request must still be answered";
  EXPECT_TRUE(contains(*late, R"("ok":true)")) << *late;
  EXPECT_TRUE(contains(*late, R"("feasible":false)")) << *late;
  EXPECT_TRUE(contains(*late, "deadline expired in queue")) << *late;

  // The connection survived: a fresh request on it still answers.
  failpoint::clear_all();
  client.send_line(std::string(R"({"id":"after","instance":)") + kInstance +
                   "}");
  const auto after = client.read_line();
  ASSERT_TRUE(after);
  EXPECT_TRUE(contains(*after, R"("feasible":true)")) << *after;
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.deadline_expired, 1u);
  server.shutdown();
}

TEST_F(ServeServerTest, PerConnectionWindowIsEnforced) {
  ServeOptions options = base_options("window");
  options.threads = 1;
  options.conn_window = 2;
  ServeServer server(options);
  server.start();
  failpoint::set("serve.solve", "delay(10)");

  TestClient client(options.unix_path);
  std::string burst;
  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    burst += std::string(R"({"instance":)") + kInstance + "}\n";
  }
  client.send_raw(burst);
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.read_line()) << "response " << i;
  }
  // Every request was answered, but never more than conn_window were in
  // flight at once -- the rest waited in the socket, not the queue.
  const ServeCounters counters = server.counters();
  EXPECT_LE(counters.conn_window_peak, 2u);
  EXPECT_EQ(counters.requests, static_cast<std::uint64_t>(kRequests));
  server.shutdown();
}

TEST_F(ServeServerTest, QueueBoundRejectsInsteadOfGrowingWithoutLimit) {
  ServeOptions options = base_options("queuefull");
  options.threads = 1;
  options.max_queue = 1;
  options.conn_window = 16;
  ServeServer server(options);
  server.start();
  failpoint::set("serve.solve", "delay(60)");

  TestClient client(options.unix_path);
  std::string burst;
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    burst += std::string(R"({"instance":)") + kInstance + "}\n";
  }
  client.send_raw(burst);
  int rejected = 0;
  for (int i = 0; i < kRequests; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line) << "response " << i;
    if (contains(*line, R"("admission":"rejected")")) {
      ++rejected;
      EXPECT_TRUE(contains(*line, "queue full")) << *line;
    }
  }
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(server.counters().rejected, static_cast<std::uint64_t>(rejected));
  server.shutdown();
}

TEST_F(ServeServerTest, OversizedLineAnswersAnErrorAndTheConnectionSurvives) {
  ServeOptions options = base_options("oversized");
  options.max_line = 256;
  ServeServer server(options);
  server.start();

  TestClient client(options.unix_path);
  client.send_line(std::string(1000, 'x'));
  const auto error = client.read_line();
  ASSERT_TRUE(error);
  EXPECT_TRUE(contains(*error, R"("ok":false)")) << *error;
  EXPECT_TRUE(contains(*error, "exceeds")) << *error;

  client.send_line(std::string(R"({"instance":)") + kInstance + "}");
  const auto ok = client.read_line();
  ASSERT_TRUE(ok);
  EXPECT_TRUE(contains(*ok, R"("feasible":true)")) << *ok;
  EXPECT_EQ(server.counters().oversized_lines, 1u);
  server.shutdown();
}

TEST_F(ServeServerTest, MidLineDisconnectLeavesTheServerServing) {
  ServeOptions options = base_options("midline");
  ServeServer server(options);
  server.start();
  {
    TestClient rude(options.unix_path);
    rude.send_raw(R"({"instance":{"m":2,"tasks":[[3,)");  // no newline
    rude.close();  // mid-line disconnect
  }
  // The fragment is dropped (it was never a complete request) and the
  // server keeps serving other clients.
  TestClient polite(options.unix_path);
  polite.send_line(std::string(R"({"instance":)") + kInstance + "}");
  const auto line = polite.read_line();
  ASSERT_TRUE(line);
  EXPECT_TRUE(contains(*line, R"("feasible":true)")) << *line;
  EXPECT_EQ(server.counters().parse_errors, 0u);
  server.shutdown();
}

TEST_F(ServeServerTest, StatszReportsQueueAdmissionsAndRungs) {
  ServeOptions options = base_options("statsz");
  options.ladder = {"rls:bottom,delta=3", "graham:lpt"};
  ServeServer server(options);
  server.start();

  TestClient client(options.unix_path);
  client.send_line(std::string(R"({"instance":)") + kInstance + "}");
  ASSERT_TRUE(client.read_line());
  client.send_line(R"({"id":"s","statsz":true})");
  const auto stats = client.read_line();
  ASSERT_TRUE(stats);
  EXPECT_TRUE(contains(*stats, R"("id":"s")")) << *stats;
  EXPECT_TRUE(contains(*stats, "\"queue_depth\":")) << *stats;
  EXPECT_TRUE(contains(*stats, R"("spec":"rls:bottom,delta=3")")) << *stats;
  EXPECT_TRUE(contains(*stats, R"("spec":"graham:lpt")")) << *stats;
  EXPECT_TRUE(contains(*stats, "\"admissions\":{\"ok\":1")) << *stats;
  server.shutdown();
}

TEST_F(ServeServerTest, CancelTripsAQueuedRequest) {
  ServeOptions options = base_options("cancel");
  options.threads = 1;
  ServeServer server(options);
  server.start();
  failpoint::set("serve.solve", "delay(40)");

  TestClient client(options.unix_path);
  client.send_line(std::string(R"({"id":"slow","instance":)") + kInstance +
                   "}");
  client.send_line(std::string(R"({"id":"victim","instance":)") + kInstance +
                   "}");
  client.send_line(R"({"cancel":"victim"})");

  bool acked = false;
  bool victim_infeasible = false;
  for (int i = 0; i < 3; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line);
    if (contains(*line, R"("cancelled":"victim")")) acked = true;
    if (contains(*line, R"("id":"victim")") &&
        contains(*line, R"("feasible":false)")) {
      victim_infeasible = true;
    }
  }
  EXPECT_TRUE(acked);
  EXPECT_TRUE(victim_infeasible)
      << "a cancelled queued request answers infeasible, not silence";
  EXPECT_EQ(server.counters().cancelled, 1u);

  client.send_line(R"({"cancel":"victim"})");  // already answered by now
  const auto stale = client.read_line();
  ASSERT_TRUE(stale);
  EXPECT_TRUE(contains(*stale, R"("ok":false)")) << *stale;
  server.shutdown();
}

TEST_F(ServeServerTest, RouterDegradesOverTheLadderUnderASeededCostTable) {
  ServeOptions options = base_options("routerladder");
  options.ladder = {"sbo:lpt,delta=3/2", "graham:lpt"};
  ServeServer server(options);
  // Pin the cost table before any traffic: the best rung "costs" 100 ms,
  // the anchor 0.01 ms, and the queue-delay term is negligible.
  server.router().seed_cost(0, 100.0);
  server.router().seed_cost(1, 0.01);
  server.router().seed_overall(0.01);
  server.start();

  TestClient client(options.unix_path);
  // Generous SLO: the preferred (best) rung fits.
  client.send_line(std::string(R"({"id":"a","slo_ms":500,"instance":)") +
                   kInstance + "}");
  const auto best = client.read_line();
  ASSERT_TRUE(best);
  EXPECT_TRUE(contains(*best, R"("admission":"ok")")) << *best;
  EXPECT_TRUE(contains(*best, R"("spec":"sbo:lpt,delta=3/2")")) << *best;

  // Tight SLO: the router degrades past the preferred rung and flags it.
  client.send_line(std::string(R"({"id":"b","slo_ms":5,"instance":)") +
                   kInstance + "}");
  const auto degraded = client.read_line();
  ASSERT_TRUE(degraded);
  EXPECT_TRUE(contains(*degraded, R"("admission":"degraded")")) << *degraded;
  EXPECT_TRUE(contains(*degraded, R"("spec":"graham:lpt")")) << *degraded;
  EXPECT_TRUE(contains(*degraded, R"("rung":1)")) << *degraded;
  server.shutdown();
}

TEST_F(ServeServerTest, ExplicitSpecBypassesTheRouter) {
  ServeOptions options = base_options("explicitspec");
  ServeServer server(options);
  server.start();
  TestClient client(options.unix_path);
  client.send_line(std::string(R"({"spec":"rls:bottom,delta=3","instance":)") +
                   kInstance + "}");
  const auto line = client.read_line();
  ASSERT_TRUE(line);
  EXPECT_TRUE(contains(*line, R"("spec":"rls:bottom,delta=3")")) << *line;
  EXPECT_FALSE(contains(*line, "\"rung\":")) << *line;

  // An unknown explicit spec answers ok:false on that request only.
  client.send_line(std::string(R"({"spec":"nope:bogus","instance":)") +
                   kInstance + "}");
  const auto bad = client.read_line();
  ASSERT_TRUE(bad);
  EXPECT_TRUE(contains(*bad, R"("ok":false)")) << *bad;
  EXPECT_EQ(server.counters().solve_errors, 1u);
  server.shutdown();
}

TEST_F(ServeServerTest, DrainAnswersEverythingAdmittedThenCloses) {
  ServeOptions options = base_options("drain");
  options.threads = 1;
  ServeServer server(options);
  server.start();
  failpoint::set("serve.solve", "delay(15)");

  TestClient client(options.unix_path);
  constexpr int kRequests = 5;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += std::string(R"({"id":")") + std::to_string(i) +
             R"(","instance":)" + kInstance + "}\n";
  }
  client.send_raw(burst);
  // Give the loop a moment to admit the burst, then drain concurrently.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread drainer([&server] { server.shutdown(); });
  int answered = 0;
  while (const auto line = client.read_line()) {
    if (contains(*line, "\"id\":\"")) ++answered;
  }
  drainer.join();
  // Every admitted request was answered before the server closed the
  // connection (read_line sees EOF only after the last response).
  EXPECT_EQ(answered, kRequests);
  server.shutdown();  // idempotent
}

TEST_F(ServeServerTest, StaleUnixSocketFileIsReclaimed) {
  const std::string path = socket_path("stale");
  {
    // Leave a bound-but-dead socket file behind, as a crashed server would.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
        << std::strerror(errno);
    ::close(fd);  // the file stays on disk
  }
  ServeOptions options = base_options("stale");
  options.unix_path = path;
  ServeServer server(options);
  server.start();  // must reclaim, not EADDRINUSE
  TestClient client(path);
  client.send_line(std::string(R"({"instance":)") + kInstance + "}");
  EXPECT_TRUE(client.read_line());
  server.shutdown();
}

TEST_F(ServeServerTest, ConcurrentClientsSurviveInjectedFaults) {
  ServeOptions options = base_options("chaos");
  options.threads = 2;
  ServeServer server(options);
  server.start();
  // Chaos: some accept rounds fail (the connection is retried by the
  // level-triggered poller), and some request lines answer an injected
  // error -- but every request line still gets exactly one response.
  failpoint::set("serve.accept", "prob(0.3,7):throw(accept blip)");
  failpoint::set("serve.request", "prob(0.15,11):throw(request blip)");

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> answered{0};
  std::atomic<int> solved{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&options, &answered, &solved] {
      TestClient client(options.unix_path);
      for (int i = 0; i < kPerClient; ++i) {
        client.send_line(std::string(R"({"instance":)") + kInstance + "}");
      }
      for (int i = 0; i < kPerClient; ++i) {
        const auto line = client.read_line();
        if (!line) break;
        answered.fetch_add(1, std::memory_order_relaxed);
        if (contains(*line, R"("feasible":true)")) {
          solved.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_TRUE(contains(*line, "injected fault")) << *line;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_GT(solved.load(), 0);
  server.shutdown();
}

TEST_F(ServeServerTest, ResultCacheAnswersDuplicatesAndCountsThem) {
  storage::SolveCache cache;
  ServeOptions options = base_options("cache");
  options.cache = &cache;
  ServeServer server(options);
  server.start();

  TestClient client(options.unix_path);
  client.send_line(std::string(R"({"id":"cold","instance":)") + kInstance +
                   "}");
  const auto cold = client.read_line();
  ASSERT_TRUE(cold);
  EXPECT_TRUE(contains(*cold, R"("ok":true)")) << *cold;

  client.send_line(std::string(R"({"id":"warm","instance":)") + kInstance +
                   "}");
  const auto warm = client.read_line();
  ASSERT_TRUE(warm);

  // The hit is byte-identical to the cold solve past the per-request
  // envelope (id and timings differ by construction).
  const auto fields_after = [](const std::string& line) {
    const std::size_t at = line.find("\"feasible\":");
    return at == std::string::npos ? line : line.substr(at);
  };
  EXPECT_EQ(fields_after(*cold), fields_after(*warm)) << *cold << "\n"
                                                      << *warm;

  client.send_line(R"({"id":"s","statsz":true})");
  const auto statsz = client.read_line();
  ASSERT_TRUE(statsz);
  EXPECT_TRUE(contains(*statsz, R"("cache_hits":1)")) << *statsz;
  EXPECT_TRUE(contains(*statsz, R"("cache_misses":1)")) << *statsz;
  EXPECT_FALSE(contains(*statsz, R"("cache_bytes":0)")) << *statsz;

  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.cache_misses, 1u);
  EXPECT_GT(counters.cache_bytes, 0u);
  server.shutdown();
}

TEST_F(ServeServerTest, RefWithoutAStoreAnswersAnErrorNotADrop) {
  ServeOptions options = base_options("refless");
  ServeServer server(options);
  server.start();

  TestClient client(options.unix_path);
  client.send_line(R"({"id":"r","ref":0})");
  const auto line = client.read_line();
  ASSERT_TRUE(line);
  EXPECT_TRUE(contains(*line, R"("ok":false)")) << *line;
  EXPECT_TRUE(contains(*line, "--store")) << *line;

  // The connection survives; a normal request still answers.
  client.send_line(std::string(R"({"id":"n","instance":)") + kInstance + "}");
  const auto next = client.read_line();
  ASSERT_TRUE(next);
  EXPECT_TRUE(contains(*next, R"("ok":true)")) << *next;
  server.shutdown();
}

TEST_F(ServeServerTest, RefSolvesFromTheAttachedStore) {
  const std::string store_name =
      "storesched-test-serve-ref-" + std::to_string(::getpid());
  storage::ShmStore::unlink(store_name);
  storage::ShmStore store = storage::ShmStore::create(store_name);
  const std::vector<Instance> instances = {
      Instance(std::vector<Task>{{3, 1}, {2, 2}, {5, 4}}, 2),
      Instance(std::vector<Task>{{7, 7}}, 1),
  };
  store.publish(wire::encode_instances(instances));

  ServeOptions options = base_options("refstore");
  options.store = &store;
  ServeServer server(options);
  server.start();

  TestClient client(options.unix_path);
  client.send_line(R"({"id":"by-ref","ref":0})");
  const auto by_ref = client.read_line();
  ASSERT_TRUE(by_ref);
  EXPECT_TRUE(contains(*by_ref, R"("ok":true)")) << *by_ref;

  client.send_line(std::string(R"({"id":"inline","instance":)") + kInstance +
                   "}");
  const auto inline_line = client.read_line();
  ASSERT_TRUE(inline_line);
  const auto fields_after = [](const std::string& line) {
    const std::size_t at = line.find("\"feasible\":");
    return at == std::string::npos ? line : line.substr(at);
  };
  EXPECT_EQ(fields_after(*by_ref), fields_after(*inline_line))
      << *by_ref << "\n"
      << *inline_line;

  client.send_line(R"({"id":"oob","ref":2})");
  const auto oob = client.read_line();
  ASSERT_TRUE(oob);
  EXPECT_TRUE(contains(*oob, R"("ok":false)")) << *oob;
  EXPECT_TRUE(contains(*oob, "out of range")) << *oob;

  server.shutdown();
  EXPECT_GT(storage::ShmStore::unlink(store_name), 0u);
}

TEST_F(ServeServerTest, TcpListenerRoundTripsOnAnEphemeralPort) {
  ServeOptions options;
  options.tcp_port = 0;  // ephemeral
  options.ladder = {"graham:lpt"};
  options.threads = 1;
  ServeServer server(options);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  // TestClient is unix-only; a raw TCP socket keeps this test honest.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.tcp_port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  const std::string request =
      std::string(R"({"id":"t","instance":)") + kInstance + "}\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string inbox;
  char buf[4096];
  while (inbox.find('\n') == std::string::npos) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    inbox.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_TRUE(contains(inbox, R"("id":"t")")) << inbox;
  EXPECT_TRUE(contains(inbox, R"("feasible":true)")) << inbox;
  ::close(fd);
  server.shutdown();
}

}  // namespace
}  // namespace storesched
