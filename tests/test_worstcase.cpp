// Tests for the adversarial RLS-tightness search (Section 7: "a tight
// counter example should be presented").
#include "core/worstcase.hpp"

#include <gtest/gtest.h>

#include "core/theory.hpp"

namespace storesched {
namespace {

TEST(WorstCase, RejectsBadParameters) {
  Rng rng(141);
  EXPECT_THROW(search_rls_worst_case(0, 2, Fraction(3), 1, 1, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(search_rls_worst_case(20, 2, Fraction(3), 1, 1, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(search_rls_worst_case(4, 1, Fraction(3), 1, 1, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(search_rls_worst_case(4, 2, Fraction(2), 1, 1, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(search_rls_worst_case(4, 2, Fraction(3), 0, 1, 10, rng),
               std::invalid_argument);
}

TEST(WorstCase, FindsInstancesWithinTheBound) {
  Rng rng(142);
  const Fraction delta(5, 2);
  const WorstCaseResult r =
      search_rls_worst_case(8, 2, delta, /*restarts=*/3, /*steps=*/30,
                            /*w_max=*/40, rng);
  // Measured ratios sit between 1 (RLS can be optimal) and Lemma 5's bound.
  EXPECT_GE(r.measured_ratio, 1.0);
  EXPECT_LE(r.measured_ratio, r.bound + 1e-9);
  EXPECT_DOUBLE_EQ(r.bound, rls_cmax_ratio(delta, 2).to_double());
  EXPECT_EQ(r.instance.n(), 8u);
  EXPECT_GT(r.evaluations, 3u);
}

TEST(WorstCase, HillClimbingImprovesOverSingleShot) {
  // More search budget can only find worse (i.e. larger-ratio) instances.
  Rng rng_a(143);
  Rng rng_b(143);
  const Fraction delta(3);
  const WorstCaseResult small =
      search_rls_worst_case(6, 2, delta, 2, 0, 30, rng_a);
  const WorstCaseResult big =
      search_rls_worst_case(6, 2, delta, 2, 60, 30, rng_b);
  EXPECT_GE(big.measured_ratio, small.measured_ratio - 1e-12);
}

TEST(WorstCase, AdversarialInstanceReproducible) {
  Rng rng(144);
  const Fraction delta(5, 2);
  const WorstCaseResult r = search_rls_worst_case(6, 3, delta, 2, 20, 25, rng);
  // Re-running RLS on the found instance reproduces the reported ratio's
  // numerator (determinism of the whole pipeline).
  const RlsResult rerun = rls_schedule(r.instance, delta);
  ASSERT_TRUE(rerun.feasible);
  EXPECT_GT(cmax(r.instance, rerun.schedule), 0);
}

}  // namespace
}  // namespace storesched
