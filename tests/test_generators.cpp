// Tests for the RNG and the synthetic workload generators (independent
// instances and DAGs), including the paper-motivated substitutes (SoC
// pipeline, physics batch).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"

namespace storesched {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Rng, UniformIntRangeAndCoverage) {
  Rng rng(7);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(10, 14);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 14);
    ++hits[static_cast<std::size_t>(v - 10)];
  }
  for (const int h : hits) EXPECT_GT(h, 0);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  EXPECT_THROW(rng.uniform_int(4, 3), std::invalid_argument);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, ParetoIntBoundsAndSkew) {
  Rng rng(11);
  double sum = 0;
  int at_low_half = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const std::int64_t v = rng.pareto_int(5, 5000, 1.1);
    ASSERT_GE(v, 5);
    ASSERT_LE(v, 5000);
    sum += static_cast<double>(v);
    if (v < 50) ++at_low_half;
  }
  // Heavy tail: most mass near the minimum, mean well below the midpoint.
  EXPECT_GT(at_low_half, trials / 2);
  EXPECT_LT(sum / trials, 2500.0);
  EXPECT_THROW(rng.pareto_int(0, 10, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto_int(1, 10, 0.0), std::invalid_argument);
}

TEST(Generators, UniformRespectsRanges) {
  Rng rng(1);
  const GenParams params{.n = 200, .m = 4, .p_min = 5, .p_max = 50,
                         .s_min = 2, .s_max = 30};
  const Instance inst = generate_uniform(params, rng);
  EXPECT_EQ(inst.n(), 200u);
  EXPECT_EQ(inst.m(), 4);
  for (const Task& t : inst.tasks()) {
    EXPECT_GE(t.p, 5);
    EXPECT_LE(t.p, 50);
    EXPECT_GE(t.s, 2);
    EXPECT_LE(t.s, 30);
  }
}

TEST(Generators, DeterministicAcrossRuns) {
  const GenParams params{.n = 50, .m = 2, .p_min = 1, .p_max = 9,
                         .s_min = 1, .s_max = 9};
  Rng r1(123);
  Rng r2(123);
  const Instance a = generate_uniform(params, r1);
  const Instance b = generate_uniform(params, r2);
  for (TaskId i = 0; i < static_cast<TaskId>(a.n()); ++i) {
    EXPECT_EQ(a.task(i), b.task(i));
  }
}

double correlation(const Instance& inst) {
  const double n = static_cast<double>(inst.n());
  double mp = 0;
  double ms = 0;
  for (const Task& t : inst.tasks()) {
    mp += static_cast<double>(t.p);
    ms += static_cast<double>(t.s);
  }
  mp /= n;
  ms /= n;
  double cov = 0;
  double vp = 0;
  double vs = 0;
  for (const Task& t : inst.tasks()) {
    const double dp = static_cast<double>(t.p) - mp;
    const double ds = static_cast<double>(t.s) - ms;
    cov += dp * ds;
    vp += dp * dp;
    vs += ds * ds;
  }
  return cov / std::sqrt(vp * vs);
}

TEST(Generators, CorrelationSigns) {
  Rng rng(5);
  const GenParams params{.n = 400, .m = 4, .p_min = 1, .p_max = 100,
                         .s_min = 1, .s_max = 100};
  EXPECT_GT(correlation(generate_correlated(params, 0.2, rng)), 0.7);
  EXPECT_LT(correlation(generate_anticorrelated(params, 0.2, rng)), -0.7);
}

TEST(Generators, BimodalHeavyFraction) {
  Rng rng(6);
  const GenParams params{.n = 500, .m = 4, .p_min = 1, .p_max = 100,
                         .s_min = 1, .s_max = 100};
  const Instance inst = generate_bimodal(params, 0.3, rng);
  const auto heavy = static_cast<std::size_t>(std::count_if(
      inst.tasks().begin(), inst.tasks().end(),
      [](const Task& t) { return t.p >= 90; }));
  EXPECT_GT(heavy, 100u);
  EXPECT_LT(heavy, 200u);
}

TEST(Generators, PhysicsBatchShape) {
  Rng rng(8);
  const Instance inst = generate_physics_batch(300, 8, 1.2, rng);
  EXPECT_EQ(inst.n(), 300u);
  for (const Task& t : inst.tasks()) {
    EXPECT_GE(t.p, 5);
    EXPECT_LE(t.p, 5000);
    EXPECT_GE(t.s, 10);  // baseline result size
  }
  EXPECT_GT(correlation(inst), 0.5);  // outputs grow with runtime
}

TEST(Generators, MemoryTightTotals) {
  Rng rng(13);
  const GenParams params{.n = 64, .m = 4, .p_min = 1, .p_max = 10,
                         .s_min = 1, .s_max = 1000};
  const Instance inst = generate_memory_tight(params, 1.5, rng);
  const double target = 4 * 1.5 * 1000.0;
  EXPECT_GT(static_cast<double>(inst.total_storage()), 0.5 * target);
  EXPECT_LT(static_cast<double>(inst.total_storage()), 2.0 * target);
}

TEST(Generators, ByNameDispatchAndUnknown) {
  Rng rng(3);
  const GenParams params;
  EXPECT_NO_THROW(generate_by_name("uniform", params, rng));
  EXPECT_NO_THROW(generate_by_name("correlated", params, rng));
  EXPECT_NO_THROW(generate_by_name("anticorrelated", params, rng));
  EXPECT_NO_THROW(generate_by_name("bimodal", params, rng));
  EXPECT_THROW(generate_by_name("nope", params, rng), std::invalid_argument);
}

TEST(Generators, InvalidParamsThrow) {
  Rng rng(1);
  GenParams bad;
  bad.n = 0;
  EXPECT_THROW(generate_uniform(bad, rng), std::invalid_argument);
  GenParams bad2;
  bad2.p_min = 0;
  EXPECT_THROW(generate_uniform(bad2, rng), std::invalid_argument);
  GenParams ok;
  EXPECT_THROW(generate_correlated(ok, 1.5, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DAG generators.
// ---------------------------------------------------------------------------

TEST(DagGenerators, LayeredShapeAndAcyclicity) {
  Rng rng(2);
  const Instance inst = generate_layered_dag(5, 4, 0.5, 3, {}, rng);
  EXPECT_EQ(inst.n(), 20u);
  ASSERT_TRUE(inst.has_precedence());
  EXPECT_TRUE(inst.dag().is_acyclic());
  // Tight layering: every non-first-layer task has a predecessor.
  for (TaskId i = 4; i < 20; ++i) {
    EXPECT_GT(inst.dag().in_degree(i), 0u);
  }
}

TEST(DagGenerators, RandomDagAcyclic) {
  Rng rng(4);
  const Instance inst = generate_random_dag(60, 0.15, 4, {}, rng);
  EXPECT_EQ(inst.n(), 60u);
  EXPECT_TRUE(inst.dag().is_acyclic());
  EXPECT_GT(inst.dag().edge_count(), 0u);
}

TEST(DagGenerators, ForkJoinStructure) {
  Rng rng(5);
  const Instance inst = generate_fork_join(3, 2, 2, {}, rng);
  EXPECT_EQ(inst.n(), 2u + 3u * 2u);
  const Dag& d = inst.dag();
  EXPECT_EQ(d.source_count(), 1u);
  EXPECT_EQ(d.sink_count(), 1u);
  EXPECT_EQ(d.out_degree(0), 3u);
  EXPECT_EQ(d.in_degree(static_cast<TaskId>(inst.n() - 1)), 3u);
}

TEST(DagGenerators, TreesHaveTreeEdgeCounts) {
  Rng rng(6);
  const Instance out = generate_out_tree(2, 3, 2, {}, rng);
  EXPECT_EQ(out.n(), 15u);  // complete binary tree, height 3
  EXPECT_EQ(out.dag().edge_count(), 14u);
  EXPECT_EQ(out.dag().source_count(), 1u);

  const Instance in = generate_in_tree(2, 3, 2, {}, rng);
  EXPECT_EQ(in.dag().sink_count(), 1u);
  EXPECT_EQ(in.dag().source_count(), 8u);  // the leaves
}

TEST(DagGenerators, CholeskyCountsMatchFormula) {
  Rng rng(7);
  const int T = 4;
  const Instance inst = generate_cholesky_dag(T, 4, {}, rng);
  // POTRF: T, TRSM: T(T-1)/2, SYRK: T(T-1)/2, GEMM: T(T-1)(T-2)/6.
  const std::size_t expected = 4u + 6u + 6u + 4u;
  EXPECT_EQ(inst.n(), expected);
  EXPECT_TRUE(inst.dag().is_acyclic());
  EXPECT_EQ(inst.dag().source_count(), 1u);  // POTRF(0) roots the graph
}

TEST(DagGenerators, FftButterflyShape) {
  Rng rng(8);
  const Instance inst = generate_fft_dag(3, 2, {}, rng);
  EXPECT_EQ(inst.n(), 8u * 4u);  // 2^3 points, 3+1 stages
  EXPECT_TRUE(inst.dag().is_acyclic());
  // Every non-input node consumes exactly two upstream values.
  for (TaskId i = 8; i < static_cast<TaskId>(inst.n()); ++i) {
    EXPECT_EQ(inst.dag().in_degree(i), 2u);
  }
}

TEST(DagGenerators, SocPipelineSharesStageCode) {
  Rng rng(9);
  const Instance inst = generate_soc_pipeline(4, 3, 2, {}, rng);
  EXPECT_EQ(inst.n(), 12u);
  EXPECT_TRUE(inst.dag().is_acyclic());
  // Replicas of one stage share the stage's code size.
  for (int st = 0; st < 4; ++st) {
    const Mem code = inst.task(static_cast<TaskId>(st * 3)).s;
    for (int r = 1; r < 3; ++r) {
      EXPECT_EQ(inst.task(static_cast<TaskId>(st * 3 + r)).s, code);
    }
  }
}

TEST(DagGenerators, ByNameDispatch) {
  Rng rng(10);
  for (const char* name :
       {"layered", "random", "forkjoin", "cholesky", "fft", "soc"}) {
    const Instance inst = generate_dag_by_name(name, 50, 4, {}, rng);
    EXPECT_TRUE(inst.has_precedence()) << name;
    EXPECT_TRUE(inst.dag().is_acyclic()) << name;
    EXPECT_GE(inst.n(), 4u) << name;
  }
  EXPECT_THROW(generate_dag_by_name("nope", 50, 4, {}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace storesched
