// Integration tests: full pipelines across modules -- generate a workload,
// schedule it through the unified solver API, validate structurally, replay
// in the simulator, and check every proven guarantee end to end.
#include <gtest/gtest.h>

#include "algorithms/graham.hpp"
#include "common/dag_generators.hpp"
#include "common/gantt.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/paper_instances.hpp"
#include "common/rng.hpp"
#include "core/pareto_enum.hpp"
#include "core/solver.hpp"
#include "core/theory.hpp"
#include "sim/event_sim.hpp"
#include "sim/online.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

TEST(Integration, SboPipelineOnPhysicsWorkload) {
  Rng rng(91);
  const Instance inst = generate_physics_batch(400, 8, 1.3, rng);
  const SolveResult r = make_solver("sbo:lpt,delta=1")->solve(inst);

  // Structural validity, then serialize and replay through the simulator.
  ASSERT_TRUE(validate_schedule(inst, r.schedule).ok);
  const Schedule timed =
      serialize_assignment(inst, r.schedule, priority_order(inst, PriorityPolicy::kSpt));
  const SimReport report = simulate_schedule(inst, timed, {.keep_trace = false});
  ASSERT_TRUE(report.ok) << report.violation;

  // The simulator's independent metric derivation agrees with the library.
  EXPECT_EQ(report.makespan, r.objectives.cmax);
  EXPECT_EQ(report.peak_memory, r.objectives.mmax);

  // Properties 1-2, end to end on a 400-task workload.
  EXPECT_TRUE(Fraction(report.makespan) <= *r.cmax_bound);
  EXPECT_TRUE(Fraction(report.peak_memory) <= *r.mmax_bound);
}

TEST(Integration, RlsPipelineOnSocWorkload) {
  Rng rng(92);
  const Instance inst = generate_soc_pipeline(10, 4, 4, {}, rng);
  const Fraction delta(3);
  const SolveResult r = make_solver("rls:bottom,delta=3")->solve(inst);
  ASSERT_TRUE(r.feasible);

  const auto vr = validate_schedule(inst, r.schedule, {.require_timed = true});
  ASSERT_TRUE(vr.ok) << vr.error;
  const SimReport report =
      simulate_schedule(inst, r.schedule, {.memory_cap = r.rls->cap.floor()});
  ASSERT_TRUE(report.ok) << report.violation;

  // Corollary 2/Lemma 5 guarantees against the Graham bounds, using the
  // bounds the SolveResult itself reports.
  EXPECT_TRUE(Fraction(report.peak_memory) <= *r.mmax_bound);
  const Fraction c_lb = Fraction::max(Fraction(inst.total_work(), inst.m()),
                                      Fraction(inst.critical_path()));
  EXPECT_TRUE(Fraction(report.makespan) <= *r.cmax_ratio * c_lb);
  EXPECT_LE(r.rls->marked_count, rls_marked_bound(delta, inst.m()));
}

TEST(Integration, OfflineRlsAndOnlineDispatchBothSatisfyCap) {
  Rng rng(93);
  const Instance inst = generate_layered_dag(6, 5, 0.3, 4, {}, rng);
  const Fraction delta(5, 2);
  const SolveResult offline =
      make_solver("rls:bottom,delta=5/2")->solve(inst);
  const OnlineResult online =
      simulate_online_rls(inst, delta, PriorityPolicy::kBottomLevel);
  ASSERT_TRUE(offline.feasible);
  if (online.feasible) {  // online has no feasibility guarantee
    EXPECT_TRUE(validate_schedule(inst, online.schedule,
                                  {.require_timed = true,
                                   .memory_cap = online.cap})
                    .ok);
  }
  EXPECT_TRUE(Fraction(offline.objectives.mmax) <= *offline.mmax_bound);
}

TEST(Integration, ConstrainedSolversAgreeOnFeasibleRegion) {
  Rng rng(94);
  const auto via_rls_solver = make_solver("constrained:rls");
  const auto via_sbo_solver = make_solver("constrained:sbo,alg=lpt");
  for (int trial = 0; trial < 6; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(8, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 4));
    const Instance inst = generate_uniform(gp, rng);
    const Mem cap = (inst.storage_lower_bound_fraction() * Fraction(3)).ceil();
    const SolveOptions budget{.memory_capacity = cap};

    const SolveResult via_rls = via_rls_solver->solve(inst, budget);
    const SolveResult via_sbo = via_sbo_solver->solve(inst, budget);
    ASSERT_TRUE(via_rls.feasible);
    ASSERT_TRUE(via_sbo.feasible);
    EXPECT_LE(via_rls.objectives.mmax, cap);
    EXPECT_LE(via_sbo.objectives.mmax, cap);
  }
}

TEST(Integration, SmallInstanceSboNeverBeatsExactFront) {
  // SBO's measured points must be covered by (i.e. not dominate) the exact
  // Pareto front -- the front is the boundary of the achievable region.
  Rng rng(95);
  for (int trial = 0; trial < 8; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(3, 9));
    gp.m = 2;
    const Instance inst = generate_uniform(gp, rng);
    const auto front = enumerate_pareto(inst);
    for (const Fraction delta : {Fraction(1, 2), Fraction(1), Fraction(2)}) {
      const SolveResult r =
          make_solver("sbo:lpt,delta=" + delta.to_string())->solve(inst);
      EXPECT_TRUE(covered_by_front(r.objectives, front.front))
          << "SBO produced a point outside the achievable region";
    }
  }
}

TEST(Integration, GadgetGanttRendering) {
  // Render the paper's Figure 1 schedules end-to-end (enumeration ->
  // serialization -> ASCII Gantt), checking the memory labels the figure
  // shows.
  const Instance inst = fig1_instance(10);
  const auto enumeration = enumerate_pareto(inst);
  ASSERT_EQ(enumeration.front.size(), 2u);
  for (const auto& pt : enumeration.front) {
    const Schedule& assignment =
        enumeration.schedules[static_cast<std::size_t>(pt.tag)];
    const Schedule timed = serialize_assignment(inst, assignment);
    const std::string art = render_gantt(inst, timed);
    EXPECT_NE(art.find("Cmax=" + std::to_string(pt.value.cmax)),
              std::string::npos);
    EXPECT_NE(art.find("Mmax=" + std::to_string(pt.value.mmax)),
              std::string::npos);
  }
}

TEST(Integration, TextRoundTripPreservesScheduleBehaviour) {
  Rng rng(96);
  const Instance inst = generate_dag_by_name("forkjoin", 30, 3, {}, rng);
  const Instance copy = from_text(to_text(inst));
  const auto solver = make_solver("rls:input,delta=3");
  const SolveResult a = solver->solve(inst);
  const SolveResult b = solver->solve(copy);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_EQ(a.schedule, b.schedule);
}

TEST(Integration, SwappedInstanceSwapsSboGuarantees) {
  // The paper's symmetry: swapping p <-> s and Delta <-> 1/Delta exchanges
  // the two objectives' roles.
  Rng rng(97);
  GenParams gp;
  gp.n = 20;
  gp.m = 3;
  const Instance inst = generate_uniform(gp, rng);
  const Instance swapped = inst.swapped();
  const SolveResult fwd = make_solver("sbo:ls,delta=2")->solve(inst);
  const SolveResult bwd = make_solver("sbo:ls,delta=1/2")->solve(swapped);
  // Guarantee values swap roles (C on one side bounds M on the other).
  EXPECT_EQ(fwd.sbo->c_ingredient, bwd.sbo->m_ingredient);
  EXPECT_EQ(fwd.sbo->m_ingredient, bwd.sbo->c_ingredient);
}

TEST(Integration, TriObjectiveVersusSboOnSameWorkload) {
  // Both algorithm families produce valid schedules on the same instance;
  // record that RLS+SPT additionally controls sum Ci while SBO does not
  // claim to.
  Rng rng(98);
  GenParams gp;
  gp.n = 24;
  gp.m = 3;
  const Instance inst = generate_anticorrelated(gp, 0.2, rng);
  const SolveResult tri = make_solver("tri:spt,delta=3")->solve(inst);
  ASSERT_TRUE(tri.feasible);
  const SolveResult sbo = make_solver("sbo:lpt,delta=1")->solve(inst);
  EXPECT_TRUE(validate_schedule(inst, sbo.schedule).ok);
  EXPECT_TRUE(Fraction(*tri.sum_ci) <=
              *tri.sumci_ratio * Fraction(optimal_sum_completion(inst)));
}

TEST(Integration, BatchPipelineAcrossWorkloadFamilies) {
  // One solver, a mixed bag of workloads, fanned out by solve_batch: every
  // result must carry its guarantee bounds and pass validation.
  Rng rng(99);
  std::vector<Instance> instances;
  for (int i = 0; i < 6; ++i) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(20, 60));
    gp.m = 4;
    instances.push_back(generate_by_name(
        i % 2 == 0 ? "uniform" : "anticorrelated", gp, rng));
  }
  const std::vector<SolveResult> results =
      solve_batch("rls:input,delta=3", instances, {.validate = true},
                  {.threads = 3});
  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].feasible) << results[i].diagnostics;
    EXPECT_TRUE(Fraction(results[i].objectives.mmax) <=
                *results[i].mmax_bound);
  }
}

}  // namespace
}  // namespace storesched
