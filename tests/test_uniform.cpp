// Tests for the uniform (related) processors extension -- the paper's
// "non identical processors" future-work item.
#include <gtest/gtest.h>

#include "algorithms/uniform.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/uniform_bi.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(UniformPartition, ValueAndBounds) {
  const std::vector<std::int64_t> w{6, 4, 10};
  const std::vector<std::int64_t> speeds{1, 2};
  const std::vector<ProcId> assign{0, 0, 1};
  // Work: P0 = 10 at speed 1 -> 10; P1 = 10 at speed 2 -> 5.
  EXPECT_EQ(uniform_partition_value(w, assign, speeds), Fraction(10));
  // LB = max(20/3, 10/2) = 20/3.
  EXPECT_EQ(uniform_lower_bound(w, speeds), Fraction(20, 3));
}

TEST(UniformPartition, RejectsBadInput) {
  const std::vector<std::int64_t> w{1};
  EXPECT_THROW(check_speeds(std::vector<std::int64_t>{}), std::invalid_argument);
  EXPECT_THROW(check_speeds(std::vector<std::int64_t>{0}), std::invalid_argument);
  const std::vector<std::int64_t> speeds{1, 1};
  const std::vector<ProcId> bad{2};
  EXPECT_THROW(uniform_partition_value(w, bad, speeds), std::invalid_argument);
}

TEST(UniformList, PrefersFastMachines) {
  // One big weight: ECT places it on the fastest machine.
  const std::vector<std::int64_t> w{100};
  const std::vector<std::int64_t> speeds{1, 5, 2};
  const auto assign = uniform_lpt_assign(w, speeds);
  EXPECT_EQ(assign[0], 1);
}

TEST(UniformList, EqualSpeedsReduceToIdentical) {
  Rng rng(121);
  std::vector<std::int64_t> w(30);
  for (auto& v : w) v = rng.uniform_int(1, 50);
  const std::vector<std::int64_t> speeds(4, 1);
  const auto uni = uniform_lpt_assign(w, speeds);
  const auto ident = lpt_assign(w, 4);
  EXPECT_EQ(partition_value(w, uni, 4), partition_value(w, ident, 4));
}

TEST(UniformList, LptWithinTwiceExactOptimum) {
  // Gonzalez-Ibarra-Sahni: LPT on uniform machines is a (2 - 2/(m+1))-
  // approximation. Cross-check against brute force on small instances.
  Rng rng(122);
  for (int trial = 0; trial < 15; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 9));
    std::vector<std::int64_t> w(n);
    for (auto& v : w) v = rng.uniform_int(1, 100);
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 3));
    std::vector<std::int64_t> speeds(m);
    for (auto& s : speeds) s = rng.uniform_int(1, 4);

    // Exhaustive optimum by odometer enumeration.
    Fraction opt(0);
    bool first = true;
    std::vector<ProcId> choice(n, 0);
    while (true) {
      const Fraction v = uniform_partition_value(w, choice, speeds);
      if (first || v < opt) {
        opt = v;
        first = false;
      }
      std::size_t pos = 0;
      while (pos < n && static_cast<std::size_t>(++choice[pos]) == m) {
        choice[pos++] = 0;
      }
      if (pos == n) break;
    }

    const auto assign = uniform_lpt_assign(w, speeds);
    const Fraction got = uniform_partition_value(w, assign, speeds);
    EXPECT_TRUE(opt <= got);
    EXPECT_TRUE(got <= Fraction(2) * opt)
        << "trial " << trial << ": " << got.to_string() << " vs 2*"
        << opt.to_string();
    // Sanity: the lower bound really is a lower bound on OPT.
    EXPECT_TRUE(uniform_lower_bound(w, speeds) <= opt);
  }
}

TEST(UniformSbo, RejectsBadInputs) {
  const Instance inst = make_instance({1, 2}, {1, 2}, 2);
  const std::vector<std::int64_t> speeds{1, 2};
  EXPECT_THROW(sbo_uniform_schedule(inst, speeds, Fraction(0)),
               std::invalid_argument);
  const std::vector<std::int64_t> wrong{1};
  EXPECT_THROW(sbo_uniform_schedule(inst, wrong, Fraction(1)),
               std::invalid_argument);
  Dag d(1);
  const Instance dag_inst({{1, 1}}, 1, d);
  EXPECT_THROW(
      sbo_uniform_schedule(dag_inst, std::vector<std::int64_t>{1}, Fraction(1)),
      std::logic_error);
}

TEST(UniformSbo, PropertyAnalogueHoldsExactly) {
  // Our extension theorem: Cmax(pi_Delta) <= (1+Delta) C and
  // Mmax(pi_Delta) <= (1 + speed_max/Delta) M, speeds normalized to min 1.
  Rng rng(123);
  for (int trial = 0; trial < 15; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(5, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_uniform(gp, rng);
    std::vector<std::int64_t> speeds(static_cast<std::size_t>(gp.m));
    for (auto& s : speeds) s = rng.uniform_int(1, 4);
    speeds[0] = 1;  // normalization: slowest speed 1

    for (const Fraction delta : {Fraction(1, 2), Fraction(1), Fraction(3)}) {
      const UniformSboResult r = sbo_uniform_schedule(inst, speeds, delta);
      EXPECT_TRUE(validate_schedule(inst, r.schedule).ok);
      EXPECT_TRUE(uniform_cmax(inst, r.schedule, speeds) <= r.cmax_bound)
          << "trial " << trial;
      EXPECT_TRUE(Fraction(mmax(inst, r.schedule)) <= r.mmax_bound)
          << "trial " << trial;
    }
  }
}

TEST(UniformSbo, IdenticalSpeedsMatchIdenticalGuarantees) {
  Rng rng(124);
  const Instance inst = generate_uniform(
      {.n = 20, .m = 3, .p_min = 1, .p_max = 40, .s_min = 1, .s_max = 40}, rng);
  const std::vector<std::int64_t> speeds{1, 1, 1};
  const UniformSboResult r = sbo_uniform_schedule(inst, speeds, Fraction(1));
  // With unit speeds, uniform cmax equals the integer cmax.
  EXPECT_EQ(uniform_cmax(inst, r.schedule, speeds),
            Fraction(cmax(inst, r.schedule)));
}

TEST(UniformRls, CapRespectedAndFeasibleAboveTwo) {
  Rng rng(125);
  for (int trial = 0; trial < 10; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(6, 25));
    gp.m = static_cast<int>(rng.uniform_int(2, 4));
    const Instance inst = generate_uniform(gp, rng);
    std::vector<std::int64_t> speeds(static_cast<std::size_t>(gp.m));
    for (auto& s : speeds) s = rng.uniform_int(1, 3);

    const UniformRlsResult r =
        rls_uniform_schedule(inst, speeds, Fraction(5, 2));
    ASSERT_TRUE(r.feasible) << trial;
    EXPECT_TRUE(Fraction(mmax(inst, r.schedule)) <= r.cap);
    EXPECT_EQ(r.makespan, uniform_cmax(inst, r.schedule, speeds));
  }
}

TEST(UniformRls, TightBudgetCanFail) {
  const Instance inst = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const std::vector<std::int64_t> speeds{1, 3};
  const UniformRlsResult r = rls_uniform_schedule(inst, speeds, Fraction(1));
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace storesched
