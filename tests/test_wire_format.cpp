// Tests for the binary columnar wire format (storage/wire_format.hpp):
// lossless round-trips across every generator family (including DAGs),
// canonical-bytes fixpoint, result-record fidelity against the JSONL wire,
// and strict rejection of hostile bytes (truncations, bit flips, format
// mix-ups) -- errors, never UB.
#include "storage/wire_format.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "core/stream.hpp"

namespace storesched {
namespace {

/// One representative per generator family, plus edge cases the columns
/// must carry exactly (empty instance list is covered separately).
std::vector<Instance> family_instances() {
  Rng rng(0xB1);
  std::vector<Instance> out;
  GenParams gp;
  gp.n = 24;
  gp.m = 3;
  for (const char* name :
       {"uniform", "correlated", "anticorrelated", "bimodal"}) {
    out.push_back(generate_by_name(name, gp, rng));
  }
  out.push_back(generate_physics_batch(40, 4, 1.6, rng));
  out.push_back(generate_memory_tight(gp, 1.5, rng));
  for (const char* name :
       {"layered", "random", "forkjoin", "cholesky", "fft", "soc"}) {
    out.push_back(generate_dag_by_name(name, 20, 4, {}, rng));
  }
  out.push_back(Instance({}, 1));              // zero tasks
  out.push_back(Instance({{0, 0}}, 7));        // zero weights
  out.push_back(Instance({{5, 3}}, 1, Dag(1)));  // DAG flag, no edges
  return out;
}

std::string jsonl_of(const std::vector<Instance>& instances) {
  std::string text;
  for (const Instance& inst : instances) {
    text += instance_to_jsonl(inst);
    text += '\n';
  }
  return text;
}

TEST(WireFormatInstances, RoundTripsEveryFamilyLosslessly) {
  const std::vector<Instance> original = family_instances();
  const std::string blob = wire::encode_instances(original);
  const std::vector<Instance> decoded = wire::decode_instances(blob);
  ASSERT_EQ(decoded.size(), original.size());
  // Bit-identical: the JSONL rendering covers every field an instance has
  // (m, weights, edges in emission order).
  EXPECT_EQ(jsonl_of(decoded), jsonl_of(original));
  // Canonical writer: encode(decode(encode(x))) == encode(x).
  EXPECT_EQ(wire::encode_instances(decoded), blob);
}

TEST(WireFormatInstances, EmptyContainerRoundTrips) {
  const std::string blob = wire::encode_instances({});
  EXPECT_TRUE(has_binary_wire_magic(blob));
  EXPECT_EQ(wire::decode_instances(blob).size(), 0u);
  EXPECT_EQ(wire::encode_instances(wire::decode_instances(blob)), blob);
}

TEST(WireFormatInstances, ViewExposesColumnsWithoutMaterializing) {
  const std::vector<Instance> original = family_instances();
  const std::string blob = wire::encode_instances(original);
  const wire::InstanceView view(blob);
  ASSERT_EQ(view.count(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(view.m(i), original[i].m());
    EXPECT_EQ(view.has_dag(i), original[i].has_precedence());
    ASSERT_EQ(view.task_p(i).size(), original[i].n());
    for (std::size_t t = 0; t < original[i].n(); ++t) {
      EXPECT_EQ(view.task_p(i)[t], original[i].task(static_cast<TaskId>(t)).p);
      EXPECT_EQ(view.task_s(i)[t], original[i].task(static_cast<TaskId>(t)).s);
    }
    EXPECT_EQ(instance_to_jsonl(view.materialize(i)),
              instance_to_jsonl(original[i]));
  }
}

TEST(WireFormat, SniffsPayloadKind) {
  EXPECT_EQ(wire::sniff_kind(wire::encode_instances({})),
            wire::PayloadKind::kInstances);
  EXPECT_EQ(wire::sniff_kind(wire::encode_results({})),
            wire::PayloadKind::kResults);
  EXPECT_EQ(wire::sniff_kind("{\"m\":1,\"tasks\":[[1,1]]}"), std::nullopt);
  EXPECT_EQ(wire::sniff_kind(""), std::nullopt);
  EXPECT_EQ(wire::sniff_kind("STSCHDB"), std::nullopt);
}

TEST(WireFormat, JsonlParserNamesTheBinaryWireOnMixup) {
  const std::string blob = wire::encode_instances(family_instances());
  try {
    instance_from_jsonl(blob, 3);
    FAIL() << "binary bytes accepted as JSONL";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("binary wire"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(WireFormat, BinaryReaderNamesJsonlOnMixup) {
  try {
    wire::decode_instances("{\"m\":1,\"tasks\":[[1,1]]}\n");
    FAIL() << "JSONL bytes accepted as binary";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("JSONL"), std::string::npos);
  }
}

TEST(WireFormat, RejectsKindConfusion) {
  const std::string instances = wire::encode_instances(family_instances());
  EXPECT_THROW(wire::decode_results(instances), std::runtime_error);
  const std::string results = wire::encode_results({});
  EXPECT_THROW(wire::decode_instances(results), std::runtime_error);
}

TEST(WireFormatHostile, EveryTruncationIsAnError) {
  std::vector<Instance> few = family_instances();
  few.resize(8, Instance({}, 1));
  const std::string blob = wire::encode_instances(few);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(wire::decode_instances(blob.substr(0, len)),
                 std::runtime_error)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(WireFormatHostile, EverySingleBitFlipIsDetected) {
  std::vector<Instance> one = family_instances();
  one.resize(1, Instance({}, 1));
  const std::string blob = wire::encode_instances(one);
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = blob;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_THROW(wire::decode_instances(mutated), std::runtime_error)
          << "flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(WireFormatHostile, RejectsVersionSkew) {
  std::string blob = wire::encode_instances({});
  const std::uint32_t future = wire::kWireVersion + 1;
  std::memcpy(blob.data() + 8, &future, 4);
  // Re-stamp the header CRC so the version check itself is what fires.
  const std::uint32_t crc = wire::crc32(blob.data(), 36);
  std::memcpy(blob.data() + 36, &crc, 4);
  try {
    wire::decode_instances(blob);
    FAIL() << "future version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Results.
// ---------------------------------------------------------------------------

/// Result rows exercising every optional field combination the wire can
/// carry: infeasible, assignment-only, timed, bounds present and absent,
/// diagnostics with JSON-hostile characters.
std::vector<wire::IndexedResult> sample_results() {
  std::vector<wire::IndexedResult> rows;
  {
    wire::IndexedResult row;
    row.index = 0;
    row.result.feasible = false;
    row.result.delta = Fraction(3, 2);
    row.result.diagnostics = "infeasible: capacity 5 < max_s 9\n\"quoted\"";
    rows.push_back(row);
  }
  {
    wire::IndexedResult row;
    row.index = 2;
    row.result.feasible = true;
    Schedule sched(3, 2);
    sched.assign(0, 0);
    sched.assign(1, 1);
    sched.assign(2, 0);
    row.result.schedule = sched;
    row.result.objectives = {10, 7};
    row.result.cmax_bound = Fraction(21, 2);
    row.result.cmax_ratio = Fraction(4, 3);
    rows.push_back(row);
  }
  {
    wire::IndexedResult row;
    row.index = 7;
    row.result.feasible = true;
    Schedule sched(2, 4);
    sched.assign(0, 3, 0);
    sched.assign(1, 0, 5);
    row.result.schedule = sched;
    row.result.objectives = {9, 4};
    row.result.sum_ci = 14;
    row.result.delta = Fraction(1);
    row.result.mmax_bound = Fraction(8);
    row.result.mmax_ratio = Fraction(2);
    row.result.sumci_ratio = Fraction(3, 2);
    rows.push_back(row);
  }
  return rows;
}

std::string jsonl_of(const std::vector<wire::IndexedResult>& rows) {
  std::string text;
  for (const auto& row : rows) {
    text += result_to_jsonl(row.index, row.result, {.include_schedule = true});
    text += '\n';
  }
  return text;
}

TEST(WireFormatResults, RoundTripsByteIdenticallyThroughJsonlRendering) {
  const std::vector<wire::IndexedResult> original = sample_results();
  const std::string blob = wire::encode_results(original);
  const std::vector<wire::IndexedResult> decoded = wire::decode_results(blob);
  ASSERT_EQ(decoded.size(), original.size());
  EXPECT_EQ(jsonl_of(decoded), jsonl_of(original));
  EXPECT_EQ(wire::encode_results(decoded), blob);
}

TEST(WireFormatResults, PayloadBlobRoundTripsEveryRow) {
  for (const auto& row : sample_results()) {
    const std::string payload = wire::encode_result_payload(row.result);
    const SolveResult back = wire::decode_result_payload(payload);
    EXPECT_EQ(result_to_jsonl(1, back, {.include_schedule = true}),
              result_to_jsonl(1, row.result, {.include_schedule = true}));
    EXPECT_EQ(wire::encode_result_payload(back), payload);
  }
}

TEST(WireFormatResults, HostilePayloadBlobIsAnError) {
  const std::string payload =
      wire::encode_result_payload(sample_results()[2].result);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(wire::decode_result_payload(payload.substr(0, len)),
                 std::runtime_error);
  }
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    std::string mutated = payload;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x40);
    try {
      (void)wire::decode_result_payload(mutated);  // may accept: no checksum
    } catch (const std::runtime_error&) {
    }
  }
}

}  // namespace
}  // namespace storesched
