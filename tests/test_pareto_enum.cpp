// Tests for exhaustive Pareto enumeration: the paper's Figure 1 and
// Figure 2 fronts reproduced exactly, symmetry-breaking counts, and
// consistency with the exact single-objective solvers.
#include "core/pareto_enum.hpp"

#include <gtest/gtest.h>

#include "algorithms/partition.hpp"
#include "common/paper_instances.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(ParetoEnum, RejectsPrecedence) {
  Dag d(1);
  const Instance inst({{1, 1}}, 1, d);
  EXPECT_THROW(enumerate_pareto(inst), std::logic_error);
}

TEST(ParetoEnum, EmptyInstance) {
  const Instance inst(std::vector<Task>{}, 2);
  const auto r = enumerate_pareto(inst);
  ASSERT_EQ(r.front.size(), 1u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{0, 0}));
}

TEST(ParetoEnum, SingleTask) {
  const Instance inst = make_instance({5}, {3}, 3);
  const auto r = enumerate_pareto(inst);
  ASSERT_EQ(r.front.size(), 1u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{5, 3}));
  // Symmetry breaking in the reference walker: one placement.
  EXPECT_EQ(enumerate_pareto_reference(inst).enumerated, 1u);
}

TEST(ParetoEnum, SymmetryBreakingCountsSetPartitions) {
  // n identical-role placements on m >= n processors enumerate the set
  // partitions into <= m blocks (Bell number when m >= n). n=3, m=3: 5.
  // This is a claim about the reference walker's complete-assignment
  // counting; the branch-and-bound engine counts search nodes instead.
  const Instance inst = make_instance({1, 2, 4}, {1, 2, 4}, 3);
  const auto r = enumerate_pareto_reference(inst);
  EXPECT_EQ(r.enumerated, 5u);
}

TEST(ParetoEnum, FrontIsValidAndSchedulesMatch) {
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 4));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 9));
    std::vector<Time> p(n);
    std::vector<Mem> s(n);
    for (auto& v : p) v = rng.uniform_int(1, 20);
    for (auto& v : s) v = rng.uniform_int(1, 20);
    const Instance inst = make_instance(p, s, m);
    const auto r = enumerate_pareto(inst);
    ASSERT_FALSE(r.front.empty());
    EXPECT_TRUE(is_valid_front(r.front));
    for (const auto& pt : r.front) {
      const Schedule& sched = r.schedules[static_cast<std::size_t>(pt.tag)];
      EXPECT_TRUE(validate_schedule(inst, sched).ok);
      EXPECT_EQ(objectives(inst, sched), pt.value);
    }
  }
}

TEST(ParetoEnum, OptimaAgreeWithExactSolvers) {
  Rng rng(62);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 3));
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 9));
    std::vector<Time> p(n);
    std::vector<Mem> s(n);
    for (auto& v : p) v = rng.uniform_int(1, 25);
    for (auto& v : s) v = rng.uniform_int(1, 25);
    const Instance inst = make_instance(p, s, m);
    const auto r = enumerate_pareto(inst);
    EXPECT_EQ(r.optimal_cmax(),
              partition_value(testing::p_weights(inst),
                              exact_bnb_assign(testing::p_weights(inst), m), m));
    EXPECT_EQ(r.optimal_mmax(),
              partition_value(testing::s_weights(inst),
                              exact_bnb_assign(testing::s_weights(inst), m), m));
  }
}

TEST(ParetoEnum, LimitGuards) {
  // Reference engine: the limit counts complete assignments. (The default
  // branch-and-bound engine resolves this all-equal instance from its LPT
  // seed alone, so the guard is exercised on the walker explicitly; the
  // branch-and-bound node limit has its own test in test_pareto_exact.)
  const Instance inst = make_instance(std::vector<Time>(12, 1),
                                      std::vector<Mem>(12, 1), 4);
  EXPECT_THROW(enumerate_pareto_reference(inst, /*limit=*/10),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// The paper's figures, exactly.
// ---------------------------------------------------------------------------

TEST(PaperFigures, Figure1FrontExact) {
  // Section 4.1 instance (eps = 1/100, times x200, storage x100):
  // Pareto points (1, 2) -> (200, 200) and (3/2, 1 + eps) -> (300, 101).
  const Instance inst = fig1_instance(100);
  const auto r = enumerate_pareto(inst);
  ASSERT_EQ(r.front.size(), 2u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{200, 200}));
  EXPECT_EQ(r.front[1].value, (ObjectivePoint{300, 101}));
  // The dominated third schedule of the paper, (2, 2 + eps) -> (400, 201),
  // must not appear.
  for (const auto& pt : r.front) {
    EXPECT_NE(pt.value, (ObjectivePoint{400, 201}));
  }
}

TEST(PaperFigures, Figure1ScalesWithEpsilon) {
  for (const Time eps_inv : {2, 10, 1000}) {
    const Instance inst = fig1_instance(eps_inv);
    const auto r = enumerate_pareto(inst);
    ASSERT_EQ(r.front.size(), 2u) << eps_inv;
    EXPECT_EQ(r.front[0].value,
              (ObjectivePoint{2 * eps_inv, 2 * eps_inv}));
    EXPECT_EQ(r.front[1].value, (ObjectivePoint{3 * eps_inv, eps_inv + 1}));
  }
}

TEST(PaperFigures, Figure2FrontExact) {
  // Section 4.3 instance (eps = 1/100, both axes x100): Pareto points
  // (1, 2-eps) -> (100, 199), (1+eps, 1+eps) -> (101, 101),
  // (2-eps, 1) -> (199, 100).
  const Instance inst = fig2_instance(100);
  const auto r = enumerate_pareto(inst);
  ASSERT_EQ(r.front.size(), 3u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{100, 199}));
  EXPECT_EQ(r.front[1].value, (ObjectivePoint{101, 101}));
  EXPECT_EQ(r.front[2].value, (ObjectivePoint{199, 100}));
}

TEST(PaperFigures, Figure2MiddlePointVanishesAtHalf) {
  // The paper notes (1+eps, 1+eps) is Pareto optimal only for eps < 1/2:
  // at eps = 1/2 it is dominated and the front has two points.
  const Instance inst = fig2_instance(2);
  const auto r = enumerate_pareto(inst);
  EXPECT_EQ(r.front.size(), 2u);
}

TEST(PaperFigures, OptimaMatchPaperValues) {
  const Instance f1 = fig1_instance(100);
  const auto r1 = enumerate_pareto(f1);
  EXPECT_EQ(r1.optimal_cmax(), 200);  // C* = 1 (x200)
  EXPECT_EQ(r1.optimal_mmax(), 101);  // M* = 1 + eps (x100)

  const Instance f2 = fig2_instance(100);
  const auto r2 = enumerate_pareto(f2);
  EXPECT_EQ(r2.optimal_cmax(), 100);  // C* = 1 (x100)
  EXPECT_EQ(r2.optimal_mmax(), 100);  // M* = 1 (x100)
}

}  // namespace
}  // namespace storesched
