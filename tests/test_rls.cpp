// Tests for RLS_Delta (paper Section 5.1, Algorithm 2): the Delta * LB
// memory cap (Corollary 2), the Lemma 4 marked-processor bound, the Lemma 5
// makespan ratio, infeasibility reporting for Delta <= 2, and structural
// schedule validity on DAG workloads.
#include "core/rls.hpp"

#include <gtest/gtest.h>

#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/paper_instances.hpp"
#include "common/rng.hpp"
#include "core/theory.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(Rls, RejectsNonPositiveDelta) {
  const Instance inst = make_instance({1}, {1}, 1);
  EXPECT_THROW(rls_schedule(inst, Fraction(0)), std::invalid_argument);
  EXPECT_THROW(rls_schedule(inst, Fraction(-3)), std::invalid_argument);
}

TEST(Rls, LbIsGrahamStorageBound) {
  const Instance inst = make_instance({1, 1, 1}, {6, 2, 1}, 2);
  const RlsResult r = rls_schedule(inst, Fraction(3));
  EXPECT_EQ(r.lb, Fraction(6));            // max_s dominates 9/2
  EXPECT_EQ(r.cap, Fraction(18));          // Delta * LB
}

TEST(Rls, FeasibleRunsRespectTheCapExactly) {
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(5, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_uniform(gp, rng);
    const Fraction delta(5, 2);
    const RlsResult r = rls_schedule(inst, delta);
    ASSERT_TRUE(r.feasible) << trial;
    const auto mem = processor_storage(inst, r.schedule);
    for (const Mem used : mem) {
      EXPECT_TRUE(Fraction(used) <= r.cap) << trial;
    }
    // Corollary 2: Mmax <= Delta * M*max follows since LB <= M*max.
    EXPECT_TRUE(Fraction(mmax(inst, r.schedule)) <= delta * r.lb);
  }
}

TEST(Rls, AlwaysFeasibleAboveTwo) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(3, 25));
    gp.m = static_cast<int>(rng.uniform_int(2, 6));
    gp.s_max = 200;
    const Instance inst = generate_uniform(gp, rng);
    const Fraction delta(201, 100);  // barely above 2
    const RlsResult r = rls_schedule(inst, delta);
    EXPECT_TRUE(r.feasible) << "Delta > 2 must always be feasible, trial "
                            << trial;
  }
}

TEST(Rls, InfeasibleReportsStuckTask) {
  // Three unit-storage tasks, one processor's budget only fits one task:
  // m=2, s = {10, 10, 10}: LB = 15, Delta = 1 -> cap = 15, so each
  // processor takes exactly one task and the third is stuck.
  const Instance inst = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const RlsResult r = rls_schedule(inst, Fraction(1));
  EXPECT_FALSE(r.feasible);
  ASSERT_TRUE(r.stuck_task.has_value());
  EXPECT_FALSE(r.schedule.fully_assigned());
}

TEST(Rls, MarkedBoundFormula) {
  EXPECT_EQ(rls_marked_bound(Fraction(3), 4), 2);       // floor(4/2)
  EXPECT_EQ(rls_marked_bound(Fraction(5, 2), 4), 2);    // floor(4/1.5)
  EXPECT_EQ(rls_marked_bound(Fraction(4), 6), 2);       // floor(6/3)
  EXPECT_THROW(rls_marked_bound(Fraction(1), 4), std::invalid_argument);
}

TEST(Rls, Lemma4MarkedProcessorsWithinBound) {
  Rng rng(43);
  for (int trial = 0; trial < 15; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(6, 40));
    gp.m = static_cast<int>(rng.uniform_int(2, 6));
    const Instance inst = generate_memory_tight(gp, 1.2, rng);
    for (const Fraction delta : {Fraction(9, 4), Fraction(3), Fraction(4)}) {
      const RlsResult r = rls_schedule(inst, delta);
      if (!r.feasible) continue;
      EXPECT_LE(r.marked_count, rls_marked_bound(delta, inst.m()))
          << "trial " << trial << " delta " << delta.to_string();
    }
  }
}

TEST(Rls, Lemma5MakespanRatioAgainstLowerBound) {
  Rng rng(44);
  for (int trial = 0; trial < 12; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_layered_dag(4, 4, 0.3, m, {}, rng);
    for (const Fraction delta : {Fraction(5, 2), Fraction(3), Fraction(6)}) {
      const RlsResult r = rls_schedule(inst, delta, PriorityPolicy::kBottomLevel);
      ASSERT_TRUE(r.feasible);
      const auto vr = validate_schedule(inst, r.schedule, {.require_timed = true});
      ASSERT_TRUE(vr.ok) << vr.error;
      // C*max >= max(work/m, critical path); the Lemma 5 ratio against that
      // lower bound must hold (it holds against C*max >= lb).
      const Fraction lb = Fraction::max(
          Fraction(inst.total_work(), m), Fraction(inst.critical_path()));
      const Fraction bound = rls_cmax_ratio(delta, m) * lb;
      EXPECT_TRUE(Fraction(cmax(inst, r.schedule)) <= bound)
          << "trial " << trial << " delta " << delta.to_string();
    }
  }
}

TEST(Rls, IndependentTasksDegenerateToLoadBalancing) {
  // With huge Delta the memory cap never binds: RLS behaves like greedy
  // list scheduling on loads.
  const Instance inst = make_instance({3, 3, 2, 2}, {1, 1, 1, 1}, 2);
  const RlsResult r = rls_schedule(inst, Fraction(1000));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.marked_count, 0);
  EXPECT_EQ(cmax(inst, r.schedule), 5);
}

TEST(Rls, DagPrecedencesRespected) {
  Rng rng(45);
  for (const char* kind : {"layered", "forkjoin", "cholesky", "soc", "fft"}) {
    const Instance inst = generate_dag_by_name(kind, 60, 3, {}, rng);
    const RlsResult r = rls_schedule(inst, Fraction(3), PriorityPolicy::kBottomLevel);
    ASSERT_TRUE(r.feasible) << kind;
    const auto vr = validate_schedule(inst, r.schedule, {.require_timed = true});
    EXPECT_TRUE(vr.ok) << kind << ": " << vr.error;
  }
}

TEST(Rls, DeterministicForFixedInputs) {
  Rng rng(46);
  const Instance inst = generate_random_dag(30, 0.2, 3, {}, rng);
  const RlsResult a = rls_schedule(inst, Fraction(3));
  const RlsResult b = rls_schedule(inst, Fraction(3));
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.marked_count, b.marked_count);
}

TEST(Rls, ReferenceEngineAgreesWithDefault) {
  // The seed's O(n^2 m) scan stays in-tree as the equivalence oracle;
  // test_hotpath_equivalence.cpp does the randomized sweep, this is the
  // smoke check that both entry points exist and agree.
  Rng rng(48);
  const Instance inst = generate_uniform({.n = 30, .m = 4}, rng);
  for (const Fraction delta : {Fraction(3, 2), Fraction(5, 2)}) {
    const RlsResult fast = rls_schedule(inst, delta);
    const RlsResult ref = rls_schedule_reference(inst, delta);
    EXPECT_EQ(fast.feasible, ref.feasible);
    EXPECT_EQ(fast.schedule, ref.schedule);
    EXPECT_EQ(fast.marked, ref.marked);
    EXPECT_EQ(fast.stuck_task, ref.stuck_task);
  }
}

TEST(Rls, TieBreakPolicyChangesOrderNotFeasibility) {
  Rng rng(47);
  const Instance inst = generate_uniform(
      {.n = 20, .m = 3, .p_min = 1, .p_max = 30, .s_min = 1, .s_max = 30}, rng);
  for (const PriorityPolicy policy :
       {PriorityPolicy::kInputOrder, PriorityPolicy::kSpt,
        PriorityPolicy::kLpt, PriorityPolicy::kLargestStorage}) {
    const RlsResult r = rls_schedule(inst, Fraction(3), policy);
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(validate_schedule(inst, r.schedule, {.require_timed = true}).ok);
  }
}

TEST(Rls, ZeroStorageInstanceTrivialCap) {
  const Instance inst = make_instance({4, 3, 2}, {0, 0, 0}, 2);
  const RlsResult r = rls_schedule(inst, Fraction(3));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.lb, Fraction(0));
  EXPECT_EQ(mmax(inst, r.schedule), 0);
}

TEST(Rls, Figure1GadgetBehaviour) {
  const Instance inst = fig1_instance(10);
  // Generous Delta: feasible, memory within Delta * LB.
  const RlsResult r = rls_schedule(inst, Fraction(3));
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(Fraction(mmax(inst, r.schedule)) <= r.cap);
}

}  // namespace
}  // namespace storesched
