The binary wire format end to end (docs/WIRE_FORMAT.md): convert is
lossless in both directions, the solver consumes either wire with
byte-identical results, auto-detection and the mix-up error keep the
formats unconfusable, and the shared-memory store + result cache serve
audited hits to CLI and server alike.

  $ storesched_cli --gen=20 --gen-n=30 --gen-m=4 --seed=11 > in.jsonl
  $ storesched_cli convert --input=in.jsonl --output=in.bin
  [storesched_cli] convert: 20 instances -> binary
  $ storesched_cli convert --to=jsonl --input=in.bin --output=back.jsonl
  [storesched_cli] convert: 20 instances -> jsonl
  $ cmp in.jsonl back.jsonl && echo round-trip-identical
  round-trip-identical

Solving from the binary wire matches the JSONL path byte for byte.
--format defaults to auto: the magic bytes decide.

  $ storesched_cli --spec=sbo:lpt,delta=3/2 --input=in.jsonl --output=out-jsonl.jsonl
  \[storesched_cli\] sbo:lpt,delta=3/2: 20 results \(20 feasible\), max [0-9]+ in flight, window [0-9]+ \(adaptive\) (re)
  $ storesched_cli --spec=sbo:lpt,delta=3/2 --input=in.bin --output=out-bin.jsonl
  \[storesched_cli\] sbo:lpt,delta=3/2: 20 results \(20 feasible\), max [0-9]+ in flight, window [0-9]+ \(adaptive\) (re)
  $ cmp out-jsonl.jsonl out-bin.jsonl && echo solve-identical
  solve-identical

A format mix-up is one clear error naming the detected format, not a
parse spray.

  $ storesched_cli --spec=graham:lpt --format=jsonl --input=in.bin --output=/dev/null
  storesched_cli: solve_stream: instance 0: instance_from_jsonl: line 1: input is the binary wire format (magic "STSCHDB1"), not JSONL -- use --format=binary (or auto-detection) instead
  [1]

Publish the batch as a shared-memory store: any process on the machine
can now solve from it by name, and --cache shares one result table
across all of them. Under STORESCHED_AUDIT=1 every cache hit is
re-audited against its instance before it is returned, so the second
(fully warm) run is as trustworthy as the first -- and byte-identical
to the plain JSONL solve.

  $ storesched_cli --store-unlink=cram0700 > /dev/null 2>&1
  $ STORESCHED_AUDIT=1 storesched_cli --store-publish=cram0700 --input=in.bin
  \[storesched_cli\] store cram0700: published epoch 1 \(20 instances, [0-9]+ bytes\) (re)
  $ STORESCHED_AUDIT=1 storesched_cli --spec=sbo:lpt,delta=3/2 --store=cram0700 --cache --output=r1.jsonl
  \[storesched_cli\] sbo:lpt,delta=3/2: 20 results \(20 feasible\), max [0-9]+ in flight, window [0-9]+ \(adaptive\), cache 0 hits / 20 misses (re)
  $ STORESCHED_AUDIT=1 storesched_cli --spec=sbo:lpt,delta=3/2 --store=cram0700 --cache --output=r2.jsonl
  \[storesched_cli\] sbo:lpt,delta=3/2: 20 results \(20 feasible\), max [0-9]+ in flight, window [0-9]+ \(adaptive\), cache 20 hits / 0 misses (re)
  $ cmp r1.jsonl out-jsonl.jsonl && cmp r2.jsonl r1.jsonl && echo cache-identical
  cache-identical
  $ storesched_cli --store-info=cram0700
  \{"store":"cram0700","epoch":1,"instances":20,"data_bytes":[0-9]+,"cache":\{"hits":20,"misses":20,"inserts":20,"bytes":[0-9]+\}\} (re)

The serving tier attaches to the same store and answers {"ref":N}
requests -- the instance never crosses the socket.

  $ storesched_serve --unix=k.sock --store=cram0700 --cache --router=graham:lpt --threads=2 > serve.log 2>&1 & echo $! > serve.pid
  $ for i in $(seq 1 100); do grep -q listening serve.log && break; sleep 0.1; done; cat serve.log
  [storesched_serve] store cram0700: epoch=1 instances=20
  \[storesched_serve\] listening on unix:k\.sock \(workers=2\) (re)
  $ printf '%s\n' '{"id":"r","ref":0}' | storesched_client --unix=k.sock --window=1
  \{"id":"r","ok":true,"admission":"ok","spec":"graham:lpt","rung":0,"queue_ms":[0-9.]+,"solve_ms":[0-9.]+,"feasible":true,"cmax":440,"mmax":383,.*\} (re)

Store segments are plain files under /dev/shm, so a SIGKILL'd process
leaks them -- nothing runs to clean up -- and a writer that dies
mid-publish leaves an orphaned epoch segment too (simulated with the
stray .d7 below). --store-unlink scans for every segment of the name
and removes them all.

  $ kill -9 $(cat serve.pid)
  $ ls /dev/shm | grep -c '^storesched.cram0700'
  2
  $ touch /dev/shm/storesched.cram0700.d7
  $ storesched_cli --store-unlink=cram0700
  [storesched_cli] store cram0700: removed 3 segment(s)
  $ ls /dev/shm | grep -c '^storesched.cram0700'
  0
  [1]
