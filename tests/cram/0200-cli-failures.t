Failure policies through the real binary: a skip run records the failed
record and exits 3 ("completed with recorded failures"); the default
abort policy stops at the first failure and exits 1. The fault is
injected deterministically with a failpoint (docs/ROBUSTNESS.md).

  $ storesched_cli --gen=20 --gen-n=30 --gen-m=4 --seed=5 > in.jsonl

Skip: the bad record lands in err.jsonl, the other 19 still stream out.

  $ STORESCHED_FAILPOINTS='stream.solve=nth(2):throw' storesched_cli --spec=graham:lpt --on-error=skip --errors=err.jsonl --input=in.jsonl --output=out.jsonl
  \[storesched_cli\] graham:lpt: 19 results \(19 feasible\), max [0-9]+ in flight, window [0-9]+ \(adaptive\), 1 failed (re)
  [3]
  $ wc -l < out.jsonl
  19
  $ wc -l < err.jsonl
  1
  $ head -1 err.jsonl
  \{"index":1,"error":true,"category":"solve","line":2,"attempts":1,.*\} (re)

Retry turns the same one-shot transient fault into a clean run: the
second attempt succeeds, so nothing is recorded and the exit is 0.

  $ STORESCHED_FAILPOINTS='stream.solve=nth(2):throw' storesched_cli --spec=graham:lpt --on-error=retry --input=in.jsonl --output=out2.jsonl
  \[storesched_cli\] graham:lpt: 20 results \(20 feasible\), .* 1 retries \(1 recovered\) (re)
  $ wc -l < out2.jsonl
  20

Abort (the default): first failure stops the run with exit 1.

  $ STORESCHED_FAILPOINTS='stream.solve=nth(2):throw' storesched_cli --spec=graham:lpt --input=in.jsonl --output=out3.jsonl
  storesched_cli: solve_stream: instance 1: failpoint stream.solve: injected fault
  [1]
