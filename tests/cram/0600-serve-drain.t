Graceful drain under load: with every solve slowed by a failpoint, a
SIGTERM that lands while requests are still queued must not lose any of
them -- each admitted request is answered before the process exits.

  $ for i in 1 2 3 4 5 6; do printf '{"id":"r%s","spec":"graham:lpt","instance":{"m":2,"tasks":[[3,1],[2,2],[5,4]]}}\n' "$i"; done > reqs.jsonl
  $ STORESCHED_FAILPOINTS='serve.solve=delay(50)' storesched_serve --unix=s.sock --router='graham:lpt' --threads=1 > serve.log 2>&1 & echo $! > serve.pid
  $ for i in $(seq 1 100); do grep -q listening serve.log && break; sleep 0.1; done; grep -c listening serve.log
  1
  $ storesched_client --unix=s.sock --window=8 < reqs.jsonl > resp.jsonl 2>&1 & echo $! > client.pid
  $ sleep 0.3; kill -TERM $(cat serve.pid); for i in $(seq 1 100); do [ "$(wc -l < resp.jsonl)" -eq 6 ] && grep -q drained serve.log && break; sleep 0.1; done; wc -l < resp.jsonl
  6
  $ grep -c '"ok":true' resp.jsonl
  6
  $ grep drained serve.log
  [storesched_serve] drained: requests=6 responses=6 rejected=0 deadline_expired=0
