This transcript is deliberately wrong. It exists so CI can prove the
cram runner actually compares output: running this file must FAIL. If
it ever passes, the harness has stopped checking anything.

  $ echo hello
  goodbye
