The serving tier over a unix socket: start, wait for the readiness line
(never a sleep), answer a solve request and a statsz introspection
request, then drain cleanly on SIGTERM.

  $ storesched_serve --unix=s.sock --router='graham:lpt;graham:input' --threads=2 > serve.log 2>&1 & echo $! > serve.pid
  $ for i in $(seq 1 100); do grep -q listening serve.log && break; sleep 0.1; done; grep listening serve.log
  \[storesched_serve\] listening on unix:s\.sock \(workers=2\) (re)

One request line, one response line, matched by the echoed id. The
response carries the admission decision, the spec that served it, and
the solve objectives.

  $ printf '%s\n' '{"id":"a","instance":{"m":2,"tasks":[[3,1],[2,2],[5,4]]}}' | storesched_client --unix=s.sock --window=1
  \{"id":"a","ok":true,"admission":"ok","spec":"graham:lpt","rung":0,"queue_ms":[0-9.]+,"solve_ms":[0-9.]+,"feasible":true,"cmax":5,"mmax":4,.*\} (re)

In-band introspection: a statsz request answers one JSON snapshot.

  $ printf '%s\n' '{"statsz":true}' | storesched_client --unix=s.sock --window=1
  \{"ok":true,"statsz":\{"draining":false,"workers":2,"queue_depth":[0-9]+,.*"requests":1,"responses":1,.*"rungs":\[\{"rung":0,"spec":"graham:lpt",.*\}\]\}\} (re)

SIGTERM drains: everything admitted is answered, then the process exits
and reports its counters.

  $ kill -TERM $(cat serve.pid); for i in $(seq 1 100); do grep -q drained serve.log && break; sleep 0.1; done; grep drained serve.log
  [storesched_serve] drained: requests=1 responses=2 rejected=0 deadline_expired=0

A drained server leaves no socket behind.

  $ test -e s.sock || echo gone
  gone
