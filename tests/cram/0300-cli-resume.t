Crash-safe resume through the real binary: SIGKILL a journaled run mid
stream (solves slowed by a delay failpoint so the kill lands mid-batch),
then --resume finishes the remainder and the combined output re-checks
clean. No cooperative shutdown is involved -- kill -9 leaves only what
the fsync'd journal pinned.

  $ storesched_cli --gen=60 --gen-n=30 --gen-m=4 --seed=11 > in.jsonl
  $ STORESCHED_FAILPOINTS='stream.solve=delay(30)' storesched_cli --spec=graham:lpt --input=in.jsonl --output=out.jsonl --journal=j.log --journal-every=4 & pid=$!; sleep 0.6; kill -9 $pid; wait $pid 2>/dev/null; test $? -eq 137 && echo killed
  killed

The interrupted run produced a strict prefix, not the full batch.

  $ test "$(wc -l < out.jsonl)" -lt 60 && echo partial
  partial

Resume picks up at the last checkpoint and completes the output.

  $ storesched_cli --spec=graham:lpt --input=in.jsonl --output=out.jsonl --journal=j.log --resume
  \[storesched_cli\] resuming at record [0-9]+ \(input line [0-9]+, journal j\.log\) (re)
  \[storesched_cli\] graham:lpt: [0-9]+ results \([0-9]+ feasible\), max [0-9]+ in flight, window [0-9]+ \(adaptive\) (re)
  $ wc -l < out.jsonl
  60
  $ storesched_cli --check --spec=graham:lpt --expect=out.jsonl < in.jsonl
  check: 60 results match out.jsonl
