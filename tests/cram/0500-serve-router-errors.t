Protocol-error and admission behaviour: malformed requests get error
responses (never a dropped connection), unknown specs are reported, the
line limit is enforced, and the SLO admission field reflects the
deadline headroom.

  $ storesched_serve --unix=s.sock --router='graham:lpt' --max-line=256 > serve.log 2>&1 & echo $! > serve.pid
  $ for i in $(seq 1 100); do grep -q listening serve.log && break; sleep 0.1; done; grep -c listening serve.log
  1

Not JSON at all: a parse-error response.

  $ printf '%s\n' 'not json' | storesched_client --unix=s.sock --window=1
  {"ok":false,"error":"serve request: expected '{' (at byte 0)"}

A spec the router cannot build: the error names the unknown family.

  $ printf '%s\n' '{"id":"x","spec":"nope:nope","instance":{"m":1,"tasks":[[1,1]]}}' | storesched_client --unix=s.sock --window=1
  \{"id":"x","ok":false,"error":"make_solver: unknown solver family \\"nope\\"",.*\} (re)

A request line over --max-line is rejected with the limit echoed back.

  $ awk 'BEGIN { s = "{\"id\":\"big\",\"pad\":\""; while (length(s) < 300) s = s "x"; print s "\"}" }' | storesched_client --unix=s.sock --window=1
  {"ok":false,"error":"request line exceeds 256 bytes"}

A generous SLO admits cleanly; an impossible one is still served but
flagged over_slo so the client knows the deadline had no headroom.

  $ printf '%s\n' '{"id":"ok","slo_ms":1000,"instance":{"m":2,"tasks":[[3,1],[2,2]]}}' | storesched_client --unix=s.sock --window=1
  \{"id":"ok","ok":true,"admission":"ok",.*\} (re)
  $ printf '%s\n' '{"id":"no","slo_ms":0.0001,"instance":{"m":2,"tasks":[[3,1],[2,2]]}}' | storesched_client --unix=s.sock --window=1
  \{"id":"no","ok":true,"admission":"over_slo",.*\} (re)

  $ kill -TERM $(cat serve.pid); for i in $(seq 1 100); do grep -q drained serve.log && break; sleep 0.1; done; grep -c drained serve.log
  1
