The CLI's gen -> solve -> check round trip: a generated batch streams
through the solver and re-verifies against its own results.

  $ storesched_cli --gen=20 --gen-n=40 --gen-m=4 --seed=7 > in.jsonl
  $ wc -l < in.jsonl
  20
  $ storesched_cli --spec=graham:lpt --input=in.jsonl --output=out.jsonl
  \[storesched_cli\] graham:lpt: 20 results \(20 feasible\), max [0-9]+ in flight, window [0-9]+ \(adaptive\) (re)
  $ wc -l < out.jsonl
  20
  $ storesched_cli --check --spec=graham:lpt --expect=out.jsonl < in.jsonl
  check: 20 results match out.jsonl

A result line carries the objectives the check mode diffs.

  $ head -1 out.jsonl
  \{"index":0,"feasible":true,"cmax":[0-9]+,"mmax":[0-9]+,.*\} (re)

Tampering with a result must fail the check (exit 1).

  $ sed '1s/"cmax":[0-9]*/"cmax":1/' out.jsonl > tampered.jsonl
  $ storesched_cli --check --spec=graham:lpt --expect=tampered.jsonl < in.jsonl
  check: index 0 objectives mismatch \(expected \(1, [0-9]+\), solved \([0-9]+, [0-9]+\)\) (re)
  check: 1 mismatch(es) against tampered.jsonl
  [1]
