// Tests for the streaming solve pipeline (core/stream.hpp): batch/stream
// equivalence, bounded-window backpressure, ordered vs as-completed
// delivery, cooperative cancellation, per-solve deadlines, worker-exception
// attribution, and the JSONL wire format.
#include "core/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <filesystem>
#include <fstream>
#include <map>

#include "common/dag.hpp"
#include "common/failpoint.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "core/journal.hpp"
#include "core/solver.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

std::vector<Instance> random_instances(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  for (int i = 0; i < count; ++i) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(8, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    out.push_back(generate_uniform(gp, rng));
  }
  return out;
}

Instance small_dag_instance() {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  return Instance({{2, 1}, {3, 2}, {1, 1}}, 2, dag);
}

// ---------------------------------------------------------------------------
// Batch/stream equivalence.
// ---------------------------------------------------------------------------

TEST(StreamEquivalence, MatchesSolveBatchBitIdentically) {
  const std::vector<Instance> instances = random_instances(30, 0xe1);
  for (const char* spec : {"sbo:lpt,delta=1", "rls:input,delta=3"}) {
    const auto solver = make_solver(spec);
    const std::vector<SolveResult> expected =
        solve_batch(*solver, instances, {}, {.threads = 1});
    for (const bool ordered : {true, false}) {
      std::vector<SolveResult> streamed(instances.size());
      SpanSource source(instances);
      VectorSink sink(streamed);
      StreamOptions stream;
      stream.threads = 4;
      stream.window = 3;  // tighter than the batch: backpressure engaged
      stream.ordered = ordered;
      const StreamStats stats =
          solve_stream(*solver, source, sink, {}, stream);
      EXPECT_EQ(stats.pulled, instances.size());
      EXPECT_EQ(stats.delivered, instances.size());
      for (std::size_t i = 0; i < instances.size(); ++i) {
        EXPECT_EQ(expected[i].schedule, streamed[i].schedule)
            << spec << " instance " << i << " ordered=" << ordered;
        EXPECT_EQ(expected[i].objectives, streamed[i].objectives);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Backpressure: the window bounds pulled-but-undelivered instances.
// ---------------------------------------------------------------------------

TEST(StreamBackpressure, WindowBoundsInFlight) {
  // A slow head-of-line instance in ordered mode is the worst case: the
  // fast tail completes and buffers behind it, and only the window may
  // absorb that. Both source and sink run under the driver lock, so the
  // plain counters below are race-free by the pipeline's own contract.
  constexpr std::size_t kCount = 80;
  constexpr std::size_t kWindow = 4;
  std::size_t pulled = 0;
  std::size_t delivered = 0;
  std::size_t max_outstanding = 0;

  Rng rng(0xb9);
  GenParams slow;
  slow.n = 3000;
  slow.m = 4;
  const Instance head = generate_uniform(slow, rng);

  GeneratorSource source(
      [&]() -> std::optional<Instance> {
        if (pulled >= kCount) return std::nullopt;
        ++pulled;
        if (pulled == 1) return head;
        return make_instance({1, 2, 3}, {3, 2, 1}, 2);
      },
      kCount);
  CallbackSink sink([&](std::size_t, SolveResult) {
    max_outstanding = std::max(max_outstanding, pulled - delivered);
    ++delivered;
  });

  StreamOptions stream;
  stream.threads = 4;
  stream.window = kWindow;
  stream.ordered = true;
  const StreamStats stats =
      solve_stream(*make_solver("rls:input,delta=3"), source, sink, {}, stream);

  EXPECT_EQ(stats.pulled, kCount);
  EXPECT_EQ(stats.delivered, kCount);
  EXPECT_LE(stats.max_in_flight, kWindow);
  EXPECT_LE(max_outstanding, kWindow);
}

// ---------------------------------------------------------------------------
// Adaptive window (StreamOptions::window == 0).
// ---------------------------------------------------------------------------

TEST(StreamAdaptiveWindow, TinyBudgetClampsTheWindowToTheWorkerFloor) {
  // ~1k-task instances: each in-flight unit is tens of kilobytes, so a
  // 32 KiB budget must shrink the adaptive window to its floor (the worker
  // count) instead of the 4x-workers default.
  Rng rng(0xAD1);
  std::vector<Instance> instances;
  for (int i = 0; i < 24; ++i) {
    GenParams gp;
    gp.n = 1000;
    gp.m = 4;
    instances.push_back(generate_uniform(gp, rng));
  }
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 0;  // adaptive
  stream.memory_budget = 32u << 10;
  const StreamStats stats =
      solve_stream(*make_solver("rls:input,delta=3"), source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, instances.size());
  EXPECT_EQ(stats.window, 4u);  // clamped to the worker floor
  EXPECT_LE(stats.max_in_flight, 16u);  // 4x workers before the first shrink
}

TEST(StreamAdaptiveWindow, RoomyBudgetGrowsTheWindowWithinTheCeiling) {
  const std::vector<Instance> instances = random_instances(40, 0xAD2);
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 0;  // adaptive, default 64 MiB budget
  const StreamStats stats =
      solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, instances.size());
  // Tiny instances: the observed footprint lets the window grow well past
  // the 4x-workers start, capped by the hard ceiling.
  EXPECT_GT(stats.window, 16u);
  EXPECT_LE(stats.window, 4096u);
}

TEST(StreamAdaptiveWindow, ExplicitWindowIsTakenLiterallyAndRecorded) {
  const std::vector<Instance> instances = random_instances(10, 0xAD3);
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 3;
  stream.memory_budget = 1;  // must be ignored for explicit windows
  const StreamStats stats =
      solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  EXPECT_EQ(stats.window, 3u);
  EXPECT_LE(stats.max_in_flight, 3u);
}

// ---------------------------------------------------------------------------
// Delivery modes.
// ---------------------------------------------------------------------------

TEST(StreamOrdering, OrderedDeliversInInputOrder) {
  const std::vector<Instance> instances = random_instances(40, 0x0d);
  SpanSource source(instances);
  std::vector<std::size_t> indices;
  CallbackSink sink(
      [&](std::size_t index, SolveResult) { indices.push_back(index); });
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 5;
  stream.ordered = true;
  solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  ASSERT_EQ(indices.size(), instances.size());
  for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
}

TEST(StreamOrdering, AsCompletedDeliversEveryIndexExactlyOnce) {
  const std::vector<Instance> instances = random_instances(40, 0xac);
  SpanSource source(instances);
  std::vector<std::size_t> indices;
  CallbackSink sink(
      [&](std::size_t index, SolveResult) { indices.push_back(index); });
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 5;
  stream.ordered = false;
  solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  ASSERT_EQ(indices.size(), instances.size());
  const std::set<std::size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), instances.size());
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(StreamCancel, MidRunStopsPullingButDeliversInFlight) {
  constexpr std::size_t kCount = 300;
  for (const int threads : {1, 4}) {
    auto token = std::make_shared<CancelToken>();
    std::size_t pulled = 0;
    GeneratorSource source(
        [&]() -> std::optional<Instance> {
          if (pulled >= kCount) return std::nullopt;
          ++pulled;
          return make_instance({2, 1, 3}, {1, 3, 2}, 2);
        },
        kCount);
    std::size_t delivered = 0;
    CallbackSink sink([&](std::size_t, SolveResult) {
      if (++delivered == 10) token->request_cancel();
    });
    StreamOptions stream;
    stream.threads = threads;
    stream.window = 4;
    stream.cancel = token;
    const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                           source, sink, {}, stream);
    EXPECT_TRUE(stats.cancelled) << "threads=" << threads;
    EXPECT_GE(stats.delivered, 10u);
    EXPECT_LT(stats.pulled, kCount);  // stopped pulling well short of the end
    // Nothing pulled is ever dropped: in-flight work is still delivered.
    EXPECT_EQ(stats.pulled, stats.delivered);
    EXPECT_EQ(stats.pulled, pulled);
  }
}

TEST(StreamCancel, PreCancelledTokenShortCircuitsSolve) {
  auto token = std::make_shared<CancelToken>();
  token->request_cancel();
  SolveOptions options;
  options.cancel = token;
  const SolveResult r = make_solver("sbo:lpt,delta=1")
                            ->solve(make_instance({1, 2}, {2, 1}, 2), options);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.diagnostics.find("cancelled"), std::string::npos);
}

TEST(StreamCancelStress, RandomCancelPointsNeverDropOrDoubleDeliver) {
  // Randomized cancel points under the adaptive window (the configuration a
  // long-lived service actually runs): whichever moment the token fires --
  // pre-run, mid-run, from any sink call, with or without a per-solve
  // deadline racing it -- the pipeline contract stays exact. Every pulled
  // index is delivered exactly once (no drops, no double delivery), and
  // since the generator hands out indices sequentially, the delivered set
  // is precisely the prefix [0, pulled).
  constexpr std::size_t kCount = 120;
  Rng rng(0x5ca1e);
  for (int trial = 0; trial < 12; ++trial) {
    const auto cancel_at =
        static_cast<std::size_t>(rng.uniform_int(0, 40));
    const bool ordered = rng.bernoulli(0.5);
    const int threads = static_cast<int>(rng.uniform_int(1, 4));
    const bool with_deadline = rng.bernoulli(0.5);

    auto token = std::make_shared<CancelToken>();
    if (cancel_at == 0) token->request_cancel();

    std::size_t pulled = 0;
    GeneratorSource source(
        [&]() -> std::optional<Instance> {
          if (pulled >= kCount) return std::nullopt;
          ++pulled;
          return make_instance({2, 1, 3}, {1, 3, 2}, 2);
        },
        kCount);

    std::vector<int> per_index(kCount, 0);
    std::size_t delivered = 0;
    CallbackSink sink([&](std::size_t index, SolveResult r) {
      ASSERT_LT(index, kCount);
      ++per_index[index];
      if (++delivered == cancel_at) token->request_cancel();
      if (with_deadline) {
        EXPECT_FALSE(r.feasible);
      }
    });

    SolveOptions options;
    if (with_deadline) options.deadline = std::chrono::nanoseconds(0);
    StreamOptions stream;
    stream.threads = threads;
    stream.window = 0;  // adaptive
    stream.memory_budget = 64u << 10;  // keep the window near its floor
    stream.ordered = ordered;
    stream.cancel = token;
    const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                           source, sink, options, stream);

    const std::string label =
        "trial " + std::to_string(trial) + " cancel_at=" +
        std::to_string(cancel_at) + " ordered=" + std::to_string(ordered) +
        " threads=" + std::to_string(threads) +
        " deadline=" + std::to_string(with_deadline);
    EXPECT_EQ(stats.pulled, pulled) << label;
    EXPECT_EQ(stats.delivered, stats.pulled) << label;  // nothing dropped
    EXPECT_EQ(delivered, stats.delivered) << label;
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(per_index[i], i < pulled ? 1 : 0)
          << label << " index " << i;
    }
    if (cancel_at == 0) {
      EXPECT_EQ(stats.pulled, 0u) << label;
      EXPECT_TRUE(stats.cancelled) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-solve deadlines.
// ---------------------------------------------------------------------------

TEST(StreamDeadline, ExpiredBudgetSurfacesAsInfeasibleWithDiagnostics) {
  SolveOptions options;
  options.deadline = std::chrono::nanoseconds(0);  // every solve overruns
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const SolveResult direct = make_solver("rls:input,delta=3")->solve(inst, options);
  EXPECT_FALSE(direct.feasible);
  EXPECT_NE(direct.diagnostics.find("deadline exceeded"), std::string::npos);

  const std::vector<Instance> instances = random_instances(8, 0xd1);
  SpanSource source(instances);
  std::size_t infeasible = 0;
  CallbackSink sink([&](std::size_t, SolveResult r) {
    if (!r.feasible) ++infeasible;
    EXPECT_NE(r.diagnostics.find("deadline exceeded"), std::string::npos);
  });
  StreamOptions stream;
  stream.threads = 2;
  const StreamStats stats = solve_stream(*make_solver("sbo:lpt,delta=1"),
                                         source, sink, options, stream);
  EXPECT_EQ(stats.feasible, 0u);
  EXPECT_EQ(infeasible, instances.size());
}

TEST(StreamDeadline, GenerousBudgetChangesNothing) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const auto solver = make_solver("rls:input,delta=3");
  SolveOptions options;
  options.deadline = std::chrono::minutes(10);
  const SolveResult with = solver->solve(inst, options);
  const SolveResult without = solver->solve(inst);
  ASSERT_TRUE(with.feasible);
  EXPECT_EQ(with.schedule, without.schedule);
  EXPECT_EQ(with.diagnostics, without.diagnostics);
}

// ---------------------------------------------------------------------------
// Failure attribution.
// ---------------------------------------------------------------------------

TEST(StreamErrors, WorkerExceptionNamesTheFailingInstance) {
  // An SBO batch hitting a precedence instance throws std::logic_error;
  // the pipeline must preserve the type and attach the instance index.
  std::vector<Instance> instances = random_instances(12, 0xfe);
  instances[7] = small_dag_instance();
  for (const int threads : {1, 4}) {
    SpanSource source(instances);
    std::vector<SolveResult> results(instances.size());
    VectorSink sink(results);
    StreamOptions stream;
    stream.threads = threads;
    try {
      solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
      FAIL() << "expected std::logic_error (threads=" << threads << ")";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("instance 7"), std::string::npos)
          << "message does not name the instance: " << e.what();
    }
  }
}

TEST(StreamErrors, SolveBatchNamesTheFailingInstanceToo) {
  std::vector<Instance> instances = random_instances(10, 0xfb);
  instances.push_back(small_dag_instance());  // index 10
  try {
    solve_batch("sbo:lpt,delta=1", instances, {}, {.threads = 4});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("instance 10"), std::string::npos)
        << "message does not name the instance: " << e.what();
  }
}

TEST(StreamErrors, VectorSinkRejectsOutOfRangeIndex) {
  std::vector<SolveResult> results(2);
  VectorSink sink(results);
  EXPECT_THROW(sink.consume(2, SolveResult{}), std::logic_error);
}

// ---------------------------------------------------------------------------
// JSONL wire format.
// ---------------------------------------------------------------------------

TEST(Jsonl, InstanceRoundTripsIndependentAndDag) {
  const Instance indep = make_instance({5, 1, 4}, {1, 9, 2}, 3);
  const Instance back = instance_from_jsonl(instance_to_jsonl(indep));
  ASSERT_EQ(back.n(), indep.n());
  EXPECT_EQ(back.m(), indep.m());
  EXPECT_FALSE(back.has_precedence());
  for (TaskId i = 0; i < static_cast<TaskId>(indep.n()); ++i) {
    EXPECT_EQ(back.task(i), indep.task(i));
  }

  const Instance dag = small_dag_instance();
  const Instance dag_back = instance_from_jsonl(instance_to_jsonl(dag));
  ASSERT_TRUE(dag_back.has_precedence());
  EXPECT_EQ(dag_back.dag(), dag.dag());
  EXPECT_EQ(dag_back.m(), dag.m());
}

TEST(Jsonl, ParserAcceptsWhitespaceAndAnyKeyOrder) {
  const Instance inst = instance_from_jsonl(
      " { \"tasks\" : [ [3, 1] , [2,2] ] , \"m\" : 2 } ");
  EXPECT_EQ(inst.n(), 2u);
  EXPECT_EQ(inst.m(), 2);
  EXPECT_EQ(inst.task(0).p, 3);
}

TEST(Jsonl, ParserRejectsMalformedLinesNamingTheProblem) {
  EXPECT_THROW(instance_from_jsonl("{\"m\":2}"), std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"tasks\":[[1,2]]}"), std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"m\":0,\"tasks\":[[1,2]]}"),
               std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"m\":2,\"tasks\":[[1,2]],\"zap\":1}"),
               std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"m\":2,\"tasks\":[[1,2]]} trailing"),
               std::runtime_error);
  // Out-of-range edge and cycle both fail instance validation.
  EXPECT_THROW(
      instance_from_jsonl("{\"m\":2,\"tasks\":[[1,2],[2,1]],\"edges\":[[0,5]]}"),
      std::runtime_error);
  EXPECT_THROW(instance_from_jsonl(
                   "{\"m\":2,\"tasks\":[[1,2],[2,1]],\"edges\":[[0,1],[1,0]]}"),
               std::runtime_error);
}

TEST(Jsonl, SourceSkipsBlankLinesAndNamesTheMalformedLine) {
  std::istringstream good(
      "{\"m\":2,\"tasks\":[[1,2],[3,4]]}\n"
      "\n"
      "   \n"
      "{\"m\":3,\"tasks\":[[5,6]]}\n");
  JsonlInstanceSource source(good);
  ASSERT_NE(source.next(), nullptr);
  const std::shared_ptr<const Instance> second = source.next();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->m(), 3);
  EXPECT_EQ(source.next(), nullptr);

  std::istringstream bad(
      "{\"m\":2,\"tasks\":[[1,2]]}\n"
      "\n"
      "not json\n");
  JsonlInstanceSource bad_source(bad);
  ASSERT_NE(bad_source.next(), nullptr);
  try {
    bad_source.next();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Jsonl, ParseErrorsCarryTheStreamLineNumber) {
  // The parser itself stamps the caller-supplied 1-based line number, so a
  // bad line deep in a million-line stream is locatable without the source
  // wrapper re-deriving it.
  try {
    instance_from_jsonl("{\"m\":0,\"tasks\":[[1,2]]}", 1048576);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1048576"), std::string::npos)
        << e.what();
  }
  // Instance/Dag validation errors carry it too, not just token errors.
  try {
    instance_from_jsonl(
        "{\"m\":2,\"tasks\":[[1,2],[2,1]],\"edges\":[[0,1],[1,0]]}", 77);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 77"), std::string::npos)
        << e.what();
  }
  // Without a line number the message stays line-free (direct parses).
  try {
    instance_from_jsonl("{\"m\":0,\"tasks\":[[1,2]]}");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).find("line "), std::string::npos)
        << e.what();
  }
}

TEST(Jsonl, ResultLinesCarryTheCoreFields) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const SolveResult r = make_solver("rls:input,delta=3")->solve(inst);
  ASSERT_TRUE(r.feasible);

  const std::string line = result_to_jsonl(5, r);
  EXPECT_NE(line.find("\"index\":5"), std::string::npos);
  EXPECT_NE(line.find("\"feasible\":true"), std::string::npos);
  EXPECT_NE(line.find("\"cmax\":"), std::string::npos);
  EXPECT_NE(line.find("\"mmax\":"), std::string::npos);
  EXPECT_NE(line.find("\"delta\":\"3\""), std::string::npos);
  EXPECT_EQ(line.find("\"proc\""), std::string::npos);  // opt-in only

  const std::string with_schedule =
      result_to_jsonl(5, r, {.include_schedule = true});
  EXPECT_NE(with_schedule.find("\"proc\":["), std::string::npos);
  EXPECT_NE(with_schedule.find("\"start\":["), std::string::npos);

  SolveResult infeasible;
  infeasible.diagnostics = "a \"quoted\" cause";
  const std::string bad = result_to_jsonl(0, infeasible);
  EXPECT_NE(bad.find("\"feasible\":false"), std::string::npos);
  EXPECT_EQ(bad.find("\"cmax\""), std::string::npos);
  EXPECT_NE(bad.find("a \\\"quoted\\\" cause"), std::string::npos);
}

TEST(Jsonl, SinkAndSourceComposeIntoAPipeline) {
  // instances -> JSONL text -> JsonlInstanceSource -> solve_stream ->
  // JsonlResultSink -> one line per instance, in order.
  const std::vector<Instance> instances = random_instances(6, 0x10);
  std::ostringstream instance_text;
  for (const Instance& inst : instances) {
    instance_text << instance_to_jsonl(inst) << '\n';
  }
  std::istringstream in(instance_text.str());
  std::ostringstream out;
  JsonlInstanceSource source(in);
  JsonlResultSink sink(out);
  StreamOptions stream;
  stream.threads = 2;
  const StreamStats stats = solve_stream(*make_solver("sbo:lpt,delta=1"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, instances.size());

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"index\":" + std::to_string(count)),
              std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, instances.size());
}

// ---------------------------------------------------------------------------
// Failure policies: the {abort, skip, retry} x {source, solve, sink,
// deadline} matrix, driven by failpoints for deterministic faults.
// ---------------------------------------------------------------------------

/// Clears every armed failpoint on scope exit so faults never leak across
/// test cases.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::clear_all(); }
};

enum class Fault { kSourceThrow, kSolveThrow, kSinkThrow, kDeadline };

struct CellOutcome {
  StreamStats stats;
  std::vector<StreamError> errors;
  std::map<std::size_t, int> delivered;  // index -> delivery count
  std::string thrown;                    // empty = returned normally
};

/// Runs one cell of the policy matrix: 12 instances through a JSONL
/// source with one injected fault, under the given policy. The fault
/// selectors are chosen so exactly one record is affected: the 5th pull,
/// the 4th solve attempt, or the 4th sink delivery (index 3 -- ordered
/// mode serializes sink calls in index order).
CellOutcome run_policy_cell(FailureAction action, Fault fault) {
  failpoint::clear_all();
  switch (fault) {
    case Fault::kSourceThrow:
      failpoint::set("source.next", "nth(5):throw");
      break;
    case Fault::kSolveThrow:
      failpoint::set("stream.solve", "nth(4):throw");
      break;
    case Fault::kSinkThrow:
      failpoint::set("sink.consume", "nth(4):throw");
      break;
    case Fault::kDeadline:
      break;
  }
  const std::vector<Instance> instances = random_instances(12, 0xfa11);
  std::ostringstream text;
  for (const Instance& inst : instances) {
    text << instance_to_jsonl(inst) << '\n';
  }
  std::istringstream in(text.str());
  JsonlInstanceSource source(in);

  CellOutcome cell;
  CallbackSink sink(
      [&](std::size_t index, SolveResult) { ++cell.delivered[index]; });
  VectorErrorSink errors(cell.errors);
  SolveOptions options;
  if (fault == Fault::kDeadline) options.deadline = std::chrono::nanoseconds(0);
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 3;
  stream.on_error.action = action;
  stream.errors = &errors;
  try {
    cell.stats = solve_stream(*make_solver("rls:input,delta=3"), source, sink,
                              options, stream);
  } catch (const std::exception& e) {
    cell.thrown = e.what();
  }
  failpoint::clear_all();
  return cell;
}

/// Every delivery is exactly-once, and no failed index was also delivered.
void expect_exact_accounting(const CellOutcome& cell, const char* label) {
  for (const auto& [index, count] : cell.delivered) {
    EXPECT_EQ(count, 1) << label << ": index " << index
                        << " delivered more than once";
  }
  for (const StreamError& error : cell.errors) {
    EXPECT_EQ(cell.delivered.count(error.index), 0u)
        << label << ": index " << error.index << " both failed and delivered";
  }
}

TEST(StreamPolicyMatrix, AbortRethrowsForEveryFaultStage) {
  FailpointGuard guard;
  for (const Fault fault :
       {Fault::kSourceThrow, Fault::kSolveThrow, Fault::kSinkThrow}) {
    const CellOutcome cell = run_policy_cell(FailureAction::kAbort, fault);
    ASSERT_FALSE(cell.thrown.empty()) << "fault " << static_cast<int>(fault);
    EXPECT_NE(cell.thrown.find("instance "), std::string::npos) << cell.thrown;
    expect_exact_accounting(cell, "abort");
    EXPECT_TRUE(cell.errors.empty());  // abort never records, it rethrows
  }
  // The 5th pull fails before consuming input: the abort names record 4.
  const CellOutcome source_cell =
      run_policy_cell(FailureAction::kAbort, Fault::kSourceThrow);
  EXPECT_NE(source_cell.thrown.find("instance 4"), std::string::npos)
      << source_cell.thrown;
  // Ordered delivery serializes sink calls: the 4th consume is index 3.
  const CellOutcome sink_cell =
      run_policy_cell(FailureAction::kAbort, Fault::kSinkThrow);
  EXPECT_NE(sink_cell.thrown.find("instance 3"), std::string::npos)
      << sink_cell.thrown;
}

TEST(StreamPolicyMatrix, SkipRecordsTheFaultAndKeepsStreaming) {
  FailpointGuard guard;
  struct Expected {
    Fault fault;
    std::size_t delivered;
    StreamErrorCategory category;
  };
  const Expected table[] = {
      // A failed pull consumes no instance: all 12 still stream through.
      {Fault::kSourceThrow, 12, StreamErrorCategory::kSource},
      {Fault::kSolveThrow, 11, StreamErrorCategory::kSolve},
      {Fault::kSinkThrow, 11, StreamErrorCategory::kSink},
  };
  for (const Expected& want : table) {
    const CellOutcome cell = run_policy_cell(FailureAction::kSkip, want.fault);
    const std::string label = "skip fault " + std::to_string(static_cast<int>(want.fault));
    ASSERT_TRUE(cell.thrown.empty()) << label << ": " << cell.thrown;
    EXPECT_EQ(cell.stats.delivered, want.delivered) << label;
    EXPECT_EQ(cell.stats.failed, 1u) << label;
    EXPECT_EQ(cell.stats.retries, 0u) << label;
    ASSERT_EQ(cell.errors.size(), 1u) << label;
    EXPECT_EQ(cell.errors[0].category, want.category) << label;
    EXPECT_EQ(cell.errors[0].attempts, 1) << label;
    expect_exact_accounting(cell, label.c_str());
  }
}

TEST(StreamPolicyMatrix, RetryRecoversTransientSolveAndSinkFaults) {
  FailpointGuard guard;
  for (const Fault fault : {Fault::kSolveThrow, Fault::kSinkThrow}) {
    const CellOutcome cell = run_policy_cell(FailureAction::kRetry, fault);
    const std::string label = "retry fault " + std::to_string(static_cast<int>(fault));
    ASSERT_TRUE(cell.thrown.empty()) << label << ": " << cell.thrown;
    EXPECT_EQ(cell.stats.delivered, 12u) << label;
    EXPECT_EQ(cell.stats.failed, 0u) << label;
    EXPECT_EQ(cell.stats.retries, 1u) << label;
    EXPECT_EQ(cell.stats.recovered, 1u) << label;
    EXPECT_TRUE(cell.errors.empty()) << label;
    expect_exact_accounting(cell, label.c_str());
  }
}

TEST(StreamPolicyMatrix, RetryNeverRetriesSourceFaults) {
  // A source cannot re-produce bytes it already consumed; retry degrades
  // to skip-with-record, exactly like the skip policy.
  FailpointGuard guard;
  const CellOutcome cell =
      run_policy_cell(FailureAction::kRetry, Fault::kSourceThrow);
  ASSERT_TRUE(cell.thrown.empty()) << cell.thrown;
  EXPECT_EQ(cell.stats.delivered, 12u);
  EXPECT_EQ(cell.stats.failed, 1u);
  EXPECT_EQ(cell.stats.retries, 0u);
  ASSERT_EQ(cell.errors.size(), 1u);
  EXPECT_EQ(cell.errors[0].index, 4u);
  EXPECT_EQ(cell.errors[0].category, StreamErrorCategory::kSource);
  EXPECT_EQ(cell.errors[0].attempts, 1);
  expect_exact_accounting(cell, "retry/source");
}

TEST(StreamPolicyMatrix, DeadlineIsDeliveredInfeasibleNotFailed) {
  // An expired deadline is an answer (infeasible with diagnostics), not a
  // fault: no policy may route it to the error channel.
  FailpointGuard guard;
  for (const FailureAction action :
       {FailureAction::kAbort, FailureAction::kSkip, FailureAction::kRetry}) {
    const CellOutcome cell = run_policy_cell(action, Fault::kDeadline);
    const std::string label = "policy " + std::to_string(static_cast<int>(action));
    ASSERT_TRUE(cell.thrown.empty()) << label << ": " << cell.thrown;
    EXPECT_EQ(cell.stats.delivered, 12u) << label;
    EXPECT_EQ(cell.stats.failed, 0u) << label;
    EXPECT_EQ(cell.stats.feasible, 0u) << label;
    EXPECT_EQ(cell.stats.retries, 0u) << label;
    EXPECT_TRUE(cell.errors.empty()) << label;
  }
}

TEST(StreamRetry, ExhaustedAttemptsDegradeToSkipWithTheAttemptCount) {
  FailpointGuard guard;
  failpoint::set("stream.solve", "throw(persistent fault)");
  const std::vector<Instance> instances = random_instances(3, 0xeau);
  SpanSource source(instances);
  std::size_t delivered = 0;
  CallbackSink sink([&](std::size_t, SolveResult) { ++delivered; });
  std::vector<StreamError> errors;
  VectorErrorSink error_sink(errors);
  StreamOptions stream;
  stream.threads = 2;
  stream.on_error.action = FailureAction::kRetry;
  stream.on_error.retry.max_attempts = 2;
  stream.on_error.retry.base_backoff = std::chrono::microseconds(10);
  stream.errors = &error_sink;
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stats.failed, 3u);
  EXPECT_EQ(stats.retries, 3u);  // one re-attempt per record
  EXPECT_EQ(stats.recovered, 0u);
  ASSERT_EQ(errors.size(), 3u);
  for (const StreamError& error : errors) {
    EXPECT_EQ(error.attempts, 2);
    EXPECT_EQ(error.category, StreamErrorCategory::kSolve);
    EXPECT_NE(error.what.find("persistent fault"), std::string::npos);
  }
}

TEST(StreamRetry, DeterministicFaultsAreNotRetried) {
  // An SBO batch hitting a DAG instance throws std::logic_error -- the
  // default classifier refuses to retry what will fail identically.
  std::vector<Instance> instances = random_instances(5, 0x10b1);
  instances[2] = small_dag_instance();
  SpanSource source(instances);
  std::map<std::size_t, int> delivered;
  CallbackSink sink([&](std::size_t index, SolveResult) { ++delivered[index]; });
  std::vector<StreamError> errors;
  VectorErrorSink error_sink(errors);
  StreamOptions stream;
  stream.threads = 2;
  stream.on_error.action = FailureAction::kRetry;
  stream.errors = &error_sink;
  const StreamStats stats = solve_stream(*make_solver("sbo:lpt,delta=1"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, 4u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 0u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].index, 2u);
  EXPECT_EQ(errors[0].attempts, 1);
  EXPECT_EQ(delivered.count(2), 0u);
}

TEST(StreamRetry, DeadOutputStreamsFailFastUnderRetry) {
  // StreamWriteError is never retryable: a full disk or closed pipe fails
  // identically every attempt, so each record fails once and moves on.
  const std::vector<Instance> instances = random_instances(3, 0xdead);
  SpanSource source(instances);
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  JsonlResultSink sink(out);
  std::vector<StreamError> errors;
  VectorErrorSink error_sink(errors);
  StreamOptions stream;
  stream.threads = 2;
  stream.on_error.action = FailureAction::kRetry;
  stream.errors = &error_sink;
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.failed, 3u);
  EXPECT_EQ(stats.retries, 0u);
  ASSERT_EQ(errors.size(), 3u);
  for (const StreamError& error : errors) {
    EXPECT_EQ(error.attempts, 1);
    EXPECT_EQ(error.category, StreamErrorCategory::kSink);
  }
}

TEST(StreamRetry, CustomClassifierOverridesTheDefault) {
  // InjectedFault is retryable by default; a caller-supplied classifier
  // that refuses everything turns retry into skip.
  FailpointGuard guard;
  failpoint::set("stream.solve", "nth(1):throw");
  const std::vector<Instance> instances = random_instances(3, 0xc1a);
  SpanSource source(instances);
  std::size_t delivered = 0;
  CallbackSink sink([&](std::size_t, SolveResult) { ++delivered; });
  StreamOptions stream;
  stream.threads = 1;
  stream.on_error.action = FailureAction::kRetry;
  stream.on_error.retry.retryable = [](const std::exception_ptr&) {
    return false;
  };
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(StreamErrors, ParseFailuresCarryTheInputLineIntoTheRecord) {
  std::istringstream in(
      "{\"m\":2,\"tasks\":[[1,2],[3,4]]}\n"
      "{\"m\":2,\"tasks\":[[2,2]]}\n"
      "{\"bad json\n"
      "{\"m\":3,\"tasks\":[[5,6]]}\n");
  JsonlInstanceSource source(in);
  std::map<std::size_t, int> delivered;
  CallbackSink sink([&](std::size_t index, SolveResult) { ++delivered[index]; });
  std::vector<StreamError> errors;
  VectorErrorSink error_sink(errors);
  StreamOptions stream;
  stream.threads = 1;
  stream.on_error.action = FailureAction::kSkip;
  stream.errors = &error_sink;
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.source_lines, 4u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].index, 2u);  // the record slot the bad line occupied
  EXPECT_EQ(errors[0].line, 3u);   // the physical line it sat on
  EXPECT_EQ(errors[0].category, StreamErrorCategory::kSource);
  EXPECT_NE(errors[0].what.find("line 3"), std::string::npos);
  // The surviving records kept their slots: 0, 1, 3.
  EXPECT_EQ(delivered.count(2), 0u);
  EXPECT_EQ(delivered.count(3), 1u);
}

TEST(StreamErrors, ThrowingErrorSinkAbortsRegardlessOfPolicy) {
  // Losing the error channel means the run's accounting can no longer be
  // trusted: skip must NOT keep going past a failed error write.
  class BrokenErrorSink final : public ErrorSink {
   public:
    void consume(StreamError) override {
      throw std::runtime_error("error channel down");
    }
  };
  std::istringstream in(
      "{\"m\":2,\"tasks\":[[1,2]]}\n"
      "not json\n"
      "{\"m\":2,\"tasks\":[[2,1]]}\n");
  JsonlInstanceSource source(in);
  std::size_t delivered = 0;
  CallbackSink sink([&](std::size_t, SolveResult) { ++delivered; });
  BrokenErrorSink errors;
  StreamOptions stream;
  stream.threads = 1;
  stream.on_error.action = FailureAction::kSkip;
  stream.errors = &errors;
  try {
    solve_stream(*make_solver("rls:input,delta=3"), source, sink, {}, stream);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("error channel down"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Cancellation reasons and degraded spawn.
// ---------------------------------------------------------------------------

TEST(StreamCancel, FirstReasonWinsOnTheToken) {
  CancelToken token;
  token.request_cancel("drain for deploy");
  token.request_cancel("second caller");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "drain for deploy");
}

TEST(StreamCancel, ReasonSurfacesInStreamStats) {
  auto token = std::make_shared<CancelToken>();
  std::size_t pulled = 0;
  GeneratorSource source(
      [&]() -> std::optional<Instance> {
        if (pulled >= 200) return std::nullopt;
        ++pulled;
        return make_instance({2, 1, 3}, {1, 3, 2}, 2);
      },
      200);
  std::size_t delivered = 0;
  CallbackSink sink([&](std::size_t, SolveResult) {
    if (++delivered == 5) token->request_cancel("operator drain");
  });
  StreamOptions stream;
  stream.threads = 2;
  stream.window = 4;
  stream.cancel = token;
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(stats.cancel_reason, "operator drain");
}

TEST(StreamCrewSpawn, SpawnFailureBeforeAnyWorkerRethrows) {
  // The very first spawn fails: no worker ever ran, so no work could have
  // completed and degrading silently would discard the whole run.
  FailpointGuard guard;
  failpoint::set("crew.spawn", "nth(1):throw");
  const std::vector<Instance> instances = random_instances(8, 0x5b);
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  EXPECT_THROW(solve_stream(*make_solver("rls:input,delta=3"), source, sink,
                            {}, stream),
               InjectedFault);
}

TEST(StreamCrewSpawn, LateSpawnFailureDegradesWhenTheStreamStillFinishes) {
  // Worker 1 spawns, observes the pre-cancelled token, and finishes the
  // (empty) stream; the second spawn then fails. Nothing was lost, so the
  // run degrades gracefully instead of throwing a completed run away.
  FailpointGuard guard;
  failpoint::set("crew.spawn", "nth(2):throw");
  auto token = std::make_shared<CancelToken>();
  token->request_cancel("pre-drained");
  const std::vector<Instance> instances = random_instances(8, 0x5c);
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  stream.cancel = token;
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_TRUE(stats.degraded_spawn);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(stats.cancel_reason, "pre-drained");
  EXPECT_EQ(stats.delivered, 0u);
}

// ---------------------------------------------------------------------------
// Progress contract and start_index (the journal's foundations).
// ---------------------------------------------------------------------------

TEST(StreamProgressContract, ReportsEveryRetirementContiguously) {
  std::istringstream in(
      "{\"m\":2,\"tasks\":[[1,2],[3,4]]}\n"
      "{\"m\":2,\"tasks\":[[2,2]]}\n"
      "zap\n"
      "{\"m\":2,\"tasks\":[[1,1]]}\n"
      "{\"m\":3,\"tasks\":[[5,6]]}\n"
      "{\"m\":2,\"tasks\":[[4,4]]}\n"
      "{\"m\":2,\"tasks\":[[2,3]]}\n");
  JsonlInstanceSource source(in);
  std::size_t delivered = 0;
  CallbackSink sink([&](std::size_t, SolveResult) { ++delivered; });
  std::vector<StreamProgress> snapshots;
  StreamOptions stream;
  stream.threads = 2;
  stream.window = 3;
  stream.on_error.action = FailureAction::kSkip;
  stream.progress = [&](const StreamProgress& p) { snapshots.push_back(p); };
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, 6u);
  EXPECT_EQ(stats.failed, 1u);
  // One snapshot per retired record, completed counting 1..7 with no gaps,
  // and source_lines never moving backwards -- the exact contract the
  // resume journal checkpoints against.
  ASSERT_EQ(snapshots.size(), 7u);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].completed, i + 1);
    EXPECT_EQ(snapshots[i].delivered + snapshots[i].failed, i + 1);
    if (i > 0) {
      EXPECT_GE(snapshots[i].source_lines, snapshots[i - 1].source_lines);
    }
  }
  EXPECT_EQ(snapshots.back().source_lines, 7u);
  EXPECT_EQ(snapshots.back().failed, 1u);
}

TEST(StreamProgressContract, ThrowingProgressCallbackAbortsTheRun) {
  const std::vector<Instance> instances = random_instances(6, 0x9c);
  SpanSource source(instances);
  std::size_t delivered = 0;
  CallbackSink sink([&](std::size_t, SolveResult) { ++delivered; });
  StreamOptions stream;
  stream.threads = 1;
  stream.progress = [](const StreamProgress& p) {
    if (p.completed == 3) throw std::runtime_error("checkpoint failed");
  };
  EXPECT_THROW(solve_stream(*make_solver("rls:input,delta=3"), source, sink,
                            {}, stream),
               std::runtime_error);
}

TEST(StreamStartIndex, OffsetsEveryRecordIndex) {
  const std::vector<Instance> instances = random_instances(3, 0x51);
  SpanSource source(instances);
  std::vector<std::size_t> indices;
  CallbackSink sink(
      [&](std::size_t index, SolveResult) { indices.push_back(index); });
  StreamOptions stream;
  stream.threads = 1;
  stream.start_index = 100;
  const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(indices, (std::vector<std::size_t>{100, 101, 102}));
}

// ---------------------------------------------------------------------------
// Crash-safe resume (core/journal.hpp).
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A scratch directory under gtest's temp root, wiped per call.
fs::path journal_scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "storesched_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// 16 instances plus one malformed line at physical line 12.
void write_journal_input(const fs::path& path) {
  const std::vector<Instance> instances = random_instances(16, 0x70a1);
  std::ofstream out(path);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (i == 11) out << "{\"malformed\n";
    out << instance_to_jsonl(instances[i]) << '\n';
  }
}

JournaledRunOptions journal_run(const fs::path& dir, const char* prefix) {
  JournaledRunOptions run;
  run.input_path = (dir / "in.jsonl").string();
  run.output_path = (dir / (std::string(prefix) + ".out")).string();
  run.errors_path = (dir / (std::string(prefix) + ".err")).string();
  run.journal_path = (dir / (std::string(prefix) + ".journal")).string();
  run.journal_every = 1;
  return run;
}

StreamOptions skip_policy_stream() {
  StreamOptions stream;
  stream.threads = 2;
  stream.window = 3;
  stream.on_error.action = FailureAction::kSkip;
  return stream;
}

TEST(StreamJournalRun, MatchesAnUnjournaledRunByteForByte) {
  const fs::path dir = journal_scratch("plain");
  write_journal_input(dir / "in.jsonl");
  const auto solver = make_solver("rls:input,delta=3");

  const JournaledRunOptions run = journal_run(dir, "journaled");
  const StreamStats stats =
      run_journaled_jsonl(*solver, run, {}, skip_policy_stream());
  EXPECT_EQ(stats.delivered, 16u);
  EXPECT_EQ(stats.failed, 1u);

  // The same stream driven by hand, without the journal.
  std::ifstream in(dir / "in.jsonl");
  std::ostringstream out, err;
  JsonlInstanceSource source(in);
  JsonlResultSink sink(out);
  JsonlErrorSink errors(err);
  StreamOptions stream = skip_policy_stream();
  stream.errors = &errors;
  solve_stream(*solver, source, sink, {}, stream);

  EXPECT_EQ(slurp(run.output_path), out.str());
  EXPECT_EQ(slurp(run.errors_path), err.str());

  // The journal's final checkpoint matches the files it describes.
  const auto cp = StreamJournal::load(run.journal_path);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->completed, 17u);
  EXPECT_EQ(cp->source_lines, 17u);
  EXPECT_EQ(cp->out_lines, 16u);
  EXPECT_EQ(cp->err_lines, 1u);
}

TEST(StreamJournalRun, KillAndResumeIsByteIdenticalToAnUninterruptedRun) {
  FailpointGuard guard;
  const fs::path dir = journal_scratch("resume");
  write_journal_input(dir / "in.jsonl");
  const auto solver = make_solver("rls:input,delta=3");

  // Reference: one clean, uninterrupted journaled run.
  const JournaledRunOptions reference = journal_run(dir, "ref");
  run_journaled_jsonl(*solver, reference, {}, skip_policy_stream());

  // "Crash" partway: the 7th solve attempt faults under the abort policy,
  // killing the run mid-stream with a handful of records checkpointed.
  const JournaledRunOptions crashed = journal_run(dir, "res");
  failpoint::set("stream.solve", "nth(7):throw");
  StreamOptions abort_policy;  // the default action: first fault kills the run
  abort_policy.threads = 2;
  abort_policy.window = 3;
  EXPECT_THROW(run_journaled_jsonl(*solver, crashed, {}, abort_policy),
               std::runtime_error);
  failpoint::clear_all();

  // The crash left real progress behind -- resuming must not start over.
  const auto mid = StreamJournal::load(crashed.journal_path);
  ASSERT_TRUE(mid.has_value());
  EXPECT_GT(mid->completed, 0u);
  EXPECT_LT(mid->completed, 17u);

  // A torn tail (killed mid-append) plus stray garbage must both be
  // ignored by the loader.
  {
    std::ofstream tail(crashed.journal_path, std::ios::app);
    tail << "v1 999 999";  // no newline: torn
  }
  const auto after_tear = StreamJournal::load(crashed.journal_path);
  ASSERT_TRUE(after_tear.has_value());
  EXPECT_EQ(after_tear->completed, mid->completed);

  // Resume and finish the stream.
  JournaledRunOptions resumed = crashed;
  resumed.resume = true;
  const StreamStats stats =
      run_journaled_jsonl(*solver, resumed, {}, skip_policy_stream());
  EXPECT_EQ(stats.delivered + stats.failed, 17u - mid->completed);

  EXPECT_EQ(slurp(resumed.output_path), slurp(reference.output_path));
  EXPECT_EQ(slurp(resumed.errors_path), slurp(reference.errors_path));
}

TEST(StreamJournalRun, ResumeWithNoJournalStartsFresh) {
  // The first run of a supervised restart loop always passes --resume; a
  // missing journal must mean "start from the beginning", not an error.
  const fs::path dir = journal_scratch("fresh");
  write_journal_input(dir / "in.jsonl");
  const auto solver = make_solver("rls:input,delta=3");

  const JournaledRunOptions reference = journal_run(dir, "ref");
  run_journaled_jsonl(*solver, reference, {}, skip_policy_stream());

  JournaledRunOptions run = journal_run(dir, "first");
  run.resume = true;
  const StreamStats stats =
      run_journaled_jsonl(*solver, run, {}, skip_policy_stream());
  EXPECT_EQ(stats.delivered, 16u);
  EXPECT_EQ(slurp(run.output_path), slurp(reference.output_path));
}

TEST(StreamJournalRun, RejectsUnjournalableConfigurations) {
  const fs::path dir = journal_scratch("reject");
  write_journal_input(dir / "in.jsonl");
  const auto solver = make_solver("rls:input,delta=3");
  JournaledRunOptions run = journal_run(dir, "bad");

  StreamOptions unordered = skip_policy_stream();
  unordered.ordered = false;
  EXPECT_THROW(run_journaled_jsonl(*solver, run, {}, unordered),
               std::invalid_argument);

  run.journal_every = 0;
  EXPECT_THROW(run_journaled_jsonl(*solver, run, {}, skip_policy_stream()),
               std::invalid_argument);
}

TEST(StreamJournalFiles, TruncateToLinesKeepsExactlyThePrefix) {
  const fs::path dir = journal_scratch("truncate");
  const fs::path file = dir / "data.txt";
  {
    std::ofstream out(file);
    out << "a\nb\nc\nd\n";
  }
  truncate_to_lines(file.string(), 2);
  EXPECT_EQ(slurp(file), "a\nb\n");

  // Fewer lines than the journal claims: refuse, never silently lose data.
  EXPECT_THROW(truncate_to_lines(file.string(), 5), std::runtime_error);

  truncate_to_lines(file.string(), 0);
  EXPECT_EQ(slurp(file), "");

  // A missing file counts as zero lines -- and only zero.
  const fs::path missing = dir / "missing.txt";
  truncate_to_lines(missing.string(), 0);
  EXPECT_TRUE(fs::exists(missing));
  EXPECT_THROW(truncate_to_lines((dir / "gone.txt").string(), 3),
               std::runtime_error);
}

}  // namespace
}  // namespace storesched
