// Tests for the streaming solve pipeline (core/stream.hpp): batch/stream
// equivalence, bounded-window backpressure, ordered vs as-completed
// delivery, cooperative cancellation, per-solve deadlines, worker-exception
// attribution, and the JSONL wire format.
#include "core/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/dag.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "core/solver.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

std::vector<Instance> random_instances(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  for (int i = 0; i < count; ++i) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(8, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    out.push_back(generate_uniform(gp, rng));
  }
  return out;
}

Instance small_dag_instance() {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  return Instance({{2, 1}, {3, 2}, {1, 1}}, 2, dag);
}

// ---------------------------------------------------------------------------
// Batch/stream equivalence.
// ---------------------------------------------------------------------------

TEST(StreamEquivalence, MatchesSolveBatchBitIdentically) {
  const std::vector<Instance> instances = random_instances(30, 0xe1);
  for (const char* spec : {"sbo:lpt,delta=1", "rls:input,delta=3"}) {
    const auto solver = make_solver(spec);
    const std::vector<SolveResult> expected =
        solve_batch(*solver, instances, {}, {.threads = 1});
    for (const bool ordered : {true, false}) {
      std::vector<SolveResult> streamed(instances.size());
      SpanSource source(instances);
      VectorSink sink(streamed);
      StreamOptions stream;
      stream.threads = 4;
      stream.window = 3;  // tighter than the batch: backpressure engaged
      stream.ordered = ordered;
      const StreamStats stats =
          solve_stream(*solver, source, sink, {}, stream);
      EXPECT_EQ(stats.pulled, instances.size());
      EXPECT_EQ(stats.delivered, instances.size());
      for (std::size_t i = 0; i < instances.size(); ++i) {
        EXPECT_EQ(expected[i].schedule, streamed[i].schedule)
            << spec << " instance " << i << " ordered=" << ordered;
        EXPECT_EQ(expected[i].objectives, streamed[i].objectives);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Backpressure: the window bounds pulled-but-undelivered instances.
// ---------------------------------------------------------------------------

TEST(StreamBackpressure, WindowBoundsInFlight) {
  // A slow head-of-line instance in ordered mode is the worst case: the
  // fast tail completes and buffers behind it, and only the window may
  // absorb that. Both source and sink run under the driver lock, so the
  // plain counters below are race-free by the pipeline's own contract.
  constexpr std::size_t kCount = 80;
  constexpr std::size_t kWindow = 4;
  std::size_t pulled = 0;
  std::size_t delivered = 0;
  std::size_t max_outstanding = 0;

  Rng rng(0xb9);
  GenParams slow;
  slow.n = 3000;
  slow.m = 4;
  const Instance head = generate_uniform(slow, rng);

  GeneratorSource source(
      [&]() -> std::optional<Instance> {
        if (pulled >= kCount) return std::nullopt;
        ++pulled;
        if (pulled == 1) return head;
        return make_instance({1, 2, 3}, {3, 2, 1}, 2);
      },
      kCount);
  CallbackSink sink([&](std::size_t, SolveResult) {
    max_outstanding = std::max(max_outstanding, pulled - delivered);
    ++delivered;
  });

  StreamOptions stream;
  stream.threads = 4;
  stream.window = kWindow;
  stream.ordered = true;
  const StreamStats stats =
      solve_stream(*make_solver("rls:input,delta=3"), source, sink, {}, stream);

  EXPECT_EQ(stats.pulled, kCount);
  EXPECT_EQ(stats.delivered, kCount);
  EXPECT_LE(stats.max_in_flight, kWindow);
  EXPECT_LE(max_outstanding, kWindow);
}

// ---------------------------------------------------------------------------
// Adaptive window (StreamOptions::window == 0).
// ---------------------------------------------------------------------------

TEST(StreamAdaptiveWindow, TinyBudgetClampsTheWindowToTheWorkerFloor) {
  // ~1k-task instances: each in-flight unit is tens of kilobytes, so a
  // 32 KiB budget must shrink the adaptive window to its floor (the worker
  // count) instead of the 4x-workers default.
  Rng rng(0xAD1);
  std::vector<Instance> instances;
  for (int i = 0; i < 24; ++i) {
    GenParams gp;
    gp.n = 1000;
    gp.m = 4;
    instances.push_back(generate_uniform(gp, rng));
  }
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 0;  // adaptive
  stream.memory_budget = 32u << 10;
  const StreamStats stats =
      solve_stream(*make_solver("rls:input,delta=3"), source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, instances.size());
  EXPECT_EQ(stats.window, 4u);  // clamped to the worker floor
  EXPECT_LE(stats.max_in_flight, 16u);  // 4x workers before the first shrink
}

TEST(StreamAdaptiveWindow, RoomyBudgetGrowsTheWindowWithinTheCeiling) {
  const std::vector<Instance> instances = random_instances(40, 0xAD2);
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 0;  // adaptive, default 64 MiB budget
  const StreamStats stats =
      solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, instances.size());
  // Tiny instances: the observed footprint lets the window grow well past
  // the 4x-workers start, capped by the hard ceiling.
  EXPECT_GT(stats.window, 16u);
  EXPECT_LE(stats.window, 4096u);
}

TEST(StreamAdaptiveWindow, ExplicitWindowIsTakenLiterallyAndRecorded) {
  const std::vector<Instance> instances = random_instances(10, 0xAD3);
  SpanSource source(instances);
  std::vector<SolveResult> results(instances.size());
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 3;
  stream.memory_budget = 1;  // must be ignored for explicit windows
  const StreamStats stats =
      solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  EXPECT_EQ(stats.window, 3u);
  EXPECT_LE(stats.max_in_flight, 3u);
}

// ---------------------------------------------------------------------------
// Delivery modes.
// ---------------------------------------------------------------------------

TEST(StreamOrdering, OrderedDeliversInInputOrder) {
  const std::vector<Instance> instances = random_instances(40, 0x0d);
  SpanSource source(instances);
  std::vector<std::size_t> indices;
  CallbackSink sink(
      [&](std::size_t index, SolveResult) { indices.push_back(index); });
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 5;
  stream.ordered = true;
  solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  ASSERT_EQ(indices.size(), instances.size());
  for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
}

TEST(StreamOrdering, AsCompletedDeliversEveryIndexExactlyOnce) {
  const std::vector<Instance> instances = random_instances(40, 0xac);
  SpanSource source(instances);
  std::vector<std::size_t> indices;
  CallbackSink sink(
      [&](std::size_t index, SolveResult) { indices.push_back(index); });
  StreamOptions stream;
  stream.threads = 4;
  stream.window = 5;
  stream.ordered = false;
  solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
  ASSERT_EQ(indices.size(), instances.size());
  const std::set<std::size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), instances.size());
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(StreamCancel, MidRunStopsPullingButDeliversInFlight) {
  constexpr std::size_t kCount = 300;
  for (const int threads : {1, 4}) {
    auto token = std::make_shared<CancelToken>();
    std::size_t pulled = 0;
    GeneratorSource source(
        [&]() -> std::optional<Instance> {
          if (pulled >= kCount) return std::nullopt;
          ++pulled;
          return make_instance({2, 1, 3}, {1, 3, 2}, 2);
        },
        kCount);
    std::size_t delivered = 0;
    CallbackSink sink([&](std::size_t, SolveResult) {
      if (++delivered == 10) token->request_cancel();
    });
    StreamOptions stream;
    stream.threads = threads;
    stream.window = 4;
    stream.cancel = token;
    const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                           source, sink, {}, stream);
    EXPECT_TRUE(stats.cancelled) << "threads=" << threads;
    EXPECT_GE(stats.delivered, 10u);
    EXPECT_LT(stats.pulled, kCount);  // stopped pulling well short of the end
    // Nothing pulled is ever dropped: in-flight work is still delivered.
    EXPECT_EQ(stats.pulled, stats.delivered);
    EXPECT_EQ(stats.pulled, pulled);
  }
}

TEST(StreamCancel, PreCancelledTokenShortCircuitsSolve) {
  auto token = std::make_shared<CancelToken>();
  token->request_cancel();
  SolveOptions options;
  options.cancel = token;
  const SolveResult r = make_solver("sbo:lpt,delta=1")
                            ->solve(make_instance({1, 2}, {2, 1}, 2), options);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.diagnostics.find("cancelled"), std::string::npos);
}

TEST(StreamCancelStress, RandomCancelPointsNeverDropOrDoubleDeliver) {
  // Randomized cancel points under the adaptive window (the configuration a
  // long-lived service actually runs): whichever moment the token fires --
  // pre-run, mid-run, from any sink call, with or without a per-solve
  // deadline racing it -- the pipeline contract stays exact. Every pulled
  // index is delivered exactly once (no drops, no double delivery), and
  // since the generator hands out indices sequentially, the delivered set
  // is precisely the prefix [0, pulled).
  constexpr std::size_t kCount = 120;
  Rng rng(0x5ca1e);
  for (int trial = 0; trial < 12; ++trial) {
    const auto cancel_at =
        static_cast<std::size_t>(rng.uniform_int(0, 40));
    const bool ordered = rng.bernoulli(0.5);
    const int threads = static_cast<int>(rng.uniform_int(1, 4));
    const bool with_deadline = rng.bernoulli(0.5);

    auto token = std::make_shared<CancelToken>();
    if (cancel_at == 0) token->request_cancel();

    std::size_t pulled = 0;
    GeneratorSource source(
        [&]() -> std::optional<Instance> {
          if (pulled >= kCount) return std::nullopt;
          ++pulled;
          return make_instance({2, 1, 3}, {1, 3, 2}, 2);
        },
        kCount);

    std::vector<int> per_index(kCount, 0);
    std::size_t delivered = 0;
    CallbackSink sink([&](std::size_t index, SolveResult r) {
      ASSERT_LT(index, kCount);
      ++per_index[index];
      if (++delivered == cancel_at) token->request_cancel();
      if (with_deadline) {
        EXPECT_FALSE(r.feasible);
      }
    });

    SolveOptions options;
    if (with_deadline) options.deadline = std::chrono::nanoseconds(0);
    StreamOptions stream;
    stream.threads = threads;
    stream.window = 0;  // adaptive
    stream.memory_budget = 64u << 10;  // keep the window near its floor
    stream.ordered = ordered;
    stream.cancel = token;
    const StreamStats stats = solve_stream(*make_solver("rls:input,delta=3"),
                                           source, sink, options, stream);

    const std::string label =
        "trial " + std::to_string(trial) + " cancel_at=" +
        std::to_string(cancel_at) + " ordered=" + std::to_string(ordered) +
        " threads=" + std::to_string(threads) +
        " deadline=" + std::to_string(with_deadline);
    EXPECT_EQ(stats.pulled, pulled) << label;
    EXPECT_EQ(stats.delivered, stats.pulled) << label;  // nothing dropped
    EXPECT_EQ(delivered, stats.delivered) << label;
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(per_index[i], i < pulled ? 1 : 0)
          << label << " index " << i;
    }
    if (cancel_at == 0) {
      EXPECT_EQ(stats.pulled, 0u) << label;
      EXPECT_TRUE(stats.cancelled) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-solve deadlines.
// ---------------------------------------------------------------------------

TEST(StreamDeadline, ExpiredBudgetSurfacesAsInfeasibleWithDiagnostics) {
  SolveOptions options;
  options.deadline = std::chrono::nanoseconds(0);  // every solve overruns
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const SolveResult direct = make_solver("rls:input,delta=3")->solve(inst, options);
  EXPECT_FALSE(direct.feasible);
  EXPECT_NE(direct.diagnostics.find("deadline exceeded"), std::string::npos);

  const std::vector<Instance> instances = random_instances(8, 0xd1);
  SpanSource source(instances);
  std::size_t infeasible = 0;
  CallbackSink sink([&](std::size_t, SolveResult r) {
    if (!r.feasible) ++infeasible;
    EXPECT_NE(r.diagnostics.find("deadline exceeded"), std::string::npos);
  });
  StreamOptions stream;
  stream.threads = 2;
  const StreamStats stats = solve_stream(*make_solver("sbo:lpt,delta=1"),
                                         source, sink, options, stream);
  EXPECT_EQ(stats.feasible, 0u);
  EXPECT_EQ(infeasible, instances.size());
}

TEST(StreamDeadline, GenerousBudgetChangesNothing) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const auto solver = make_solver("rls:input,delta=3");
  SolveOptions options;
  options.deadline = std::chrono::minutes(10);
  const SolveResult with = solver->solve(inst, options);
  const SolveResult without = solver->solve(inst);
  ASSERT_TRUE(with.feasible);
  EXPECT_EQ(with.schedule, without.schedule);
  EXPECT_EQ(with.diagnostics, without.diagnostics);
}

// ---------------------------------------------------------------------------
// Failure attribution.
// ---------------------------------------------------------------------------

TEST(StreamErrors, WorkerExceptionNamesTheFailingInstance) {
  // An SBO batch hitting a precedence instance throws std::logic_error;
  // the pipeline must preserve the type and attach the instance index.
  std::vector<Instance> instances = random_instances(12, 0xfe);
  instances[7] = small_dag_instance();
  for (const int threads : {1, 4}) {
    SpanSource source(instances);
    std::vector<SolveResult> results(instances.size());
    VectorSink sink(results);
    StreamOptions stream;
    stream.threads = threads;
    try {
      solve_stream(*make_solver("sbo:lpt,delta=1"), source, sink, {}, stream);
      FAIL() << "expected std::logic_error (threads=" << threads << ")";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("instance 7"), std::string::npos)
          << "message does not name the instance: " << e.what();
    }
  }
}

TEST(StreamErrors, SolveBatchNamesTheFailingInstanceToo) {
  std::vector<Instance> instances = random_instances(10, 0xfb);
  instances.push_back(small_dag_instance());  // index 10
  try {
    solve_batch("sbo:lpt,delta=1", instances, {}, {.threads = 4});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("instance 10"), std::string::npos)
        << "message does not name the instance: " << e.what();
  }
}

TEST(StreamErrors, VectorSinkRejectsOutOfRangeIndex) {
  std::vector<SolveResult> results(2);
  VectorSink sink(results);
  EXPECT_THROW(sink.consume(2, SolveResult{}), std::logic_error);
}

// ---------------------------------------------------------------------------
// JSONL wire format.
// ---------------------------------------------------------------------------

TEST(Jsonl, InstanceRoundTripsIndependentAndDag) {
  const Instance indep = make_instance({5, 1, 4}, {1, 9, 2}, 3);
  const Instance back = instance_from_jsonl(instance_to_jsonl(indep));
  ASSERT_EQ(back.n(), indep.n());
  EXPECT_EQ(back.m(), indep.m());
  EXPECT_FALSE(back.has_precedence());
  for (TaskId i = 0; i < static_cast<TaskId>(indep.n()); ++i) {
    EXPECT_EQ(back.task(i), indep.task(i));
  }

  const Instance dag = small_dag_instance();
  const Instance dag_back = instance_from_jsonl(instance_to_jsonl(dag));
  ASSERT_TRUE(dag_back.has_precedence());
  EXPECT_EQ(dag_back.dag(), dag.dag());
  EXPECT_EQ(dag_back.m(), dag.m());
}

TEST(Jsonl, ParserAcceptsWhitespaceAndAnyKeyOrder) {
  const Instance inst = instance_from_jsonl(
      " { \"tasks\" : [ [3, 1] , [2,2] ] , \"m\" : 2 } ");
  EXPECT_EQ(inst.n(), 2u);
  EXPECT_EQ(inst.m(), 2);
  EXPECT_EQ(inst.task(0).p, 3);
}

TEST(Jsonl, ParserRejectsMalformedLinesNamingTheProblem) {
  EXPECT_THROW(instance_from_jsonl("{\"m\":2}"), std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"tasks\":[[1,2]]}"), std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"m\":0,\"tasks\":[[1,2]]}"),
               std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"m\":2,\"tasks\":[[1,2]],\"zap\":1}"),
               std::runtime_error);
  EXPECT_THROW(instance_from_jsonl("{\"m\":2,\"tasks\":[[1,2]]} trailing"),
               std::runtime_error);
  // Out-of-range edge and cycle both fail instance validation.
  EXPECT_THROW(
      instance_from_jsonl("{\"m\":2,\"tasks\":[[1,2],[2,1]],\"edges\":[[0,5]]}"),
      std::runtime_error);
  EXPECT_THROW(instance_from_jsonl(
                   "{\"m\":2,\"tasks\":[[1,2],[2,1]],\"edges\":[[0,1],[1,0]]}"),
               std::runtime_error);
}

TEST(Jsonl, SourceSkipsBlankLinesAndNamesTheMalformedLine) {
  std::istringstream good(
      "{\"m\":2,\"tasks\":[[1,2],[3,4]]}\n"
      "\n"
      "   \n"
      "{\"m\":3,\"tasks\":[[5,6]]}\n");
  JsonlInstanceSource source(good);
  ASSERT_NE(source.next(), nullptr);
  const std::shared_ptr<const Instance> second = source.next();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->m(), 3);
  EXPECT_EQ(source.next(), nullptr);

  std::istringstream bad(
      "{\"m\":2,\"tasks\":[[1,2]]}\n"
      "\n"
      "not json\n");
  JsonlInstanceSource bad_source(bad);
  ASSERT_NE(bad_source.next(), nullptr);
  try {
    bad_source.next();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Jsonl, ParseErrorsCarryTheStreamLineNumber) {
  // The parser itself stamps the caller-supplied 1-based line number, so a
  // bad line deep in a million-line stream is locatable without the source
  // wrapper re-deriving it.
  try {
    instance_from_jsonl("{\"m\":0,\"tasks\":[[1,2]]}", 1048576);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1048576"), std::string::npos)
        << e.what();
  }
  // Instance/Dag validation errors carry it too, not just token errors.
  try {
    instance_from_jsonl(
        "{\"m\":2,\"tasks\":[[1,2],[2,1]],\"edges\":[[0,1],[1,0]]}", 77);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 77"), std::string::npos)
        << e.what();
  }
  // Without a line number the message stays line-free (direct parses).
  try {
    instance_from_jsonl("{\"m\":0,\"tasks\":[[1,2]]}");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).find("line "), std::string::npos)
        << e.what();
  }
}

TEST(Jsonl, ResultLinesCarryTheCoreFields) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const SolveResult r = make_solver("rls:input,delta=3")->solve(inst);
  ASSERT_TRUE(r.feasible);

  const std::string line = result_to_jsonl(5, r);
  EXPECT_NE(line.find("\"index\":5"), std::string::npos);
  EXPECT_NE(line.find("\"feasible\":true"), std::string::npos);
  EXPECT_NE(line.find("\"cmax\":"), std::string::npos);
  EXPECT_NE(line.find("\"mmax\":"), std::string::npos);
  EXPECT_NE(line.find("\"delta\":\"3\""), std::string::npos);
  EXPECT_EQ(line.find("\"proc\""), std::string::npos);  // opt-in only

  const std::string with_schedule =
      result_to_jsonl(5, r, {.include_schedule = true});
  EXPECT_NE(with_schedule.find("\"proc\":["), std::string::npos);
  EXPECT_NE(with_schedule.find("\"start\":["), std::string::npos);

  SolveResult infeasible;
  infeasible.diagnostics = "a \"quoted\" cause";
  const std::string bad = result_to_jsonl(0, infeasible);
  EXPECT_NE(bad.find("\"feasible\":false"), std::string::npos);
  EXPECT_EQ(bad.find("\"cmax\""), std::string::npos);
  EXPECT_NE(bad.find("a \\\"quoted\\\" cause"), std::string::npos);
}

TEST(Jsonl, SinkAndSourceComposeIntoAPipeline) {
  // instances -> JSONL text -> JsonlInstanceSource -> solve_stream ->
  // JsonlResultSink -> one line per instance, in order.
  const std::vector<Instance> instances = random_instances(6, 0x10);
  std::ostringstream instance_text;
  for (const Instance& inst : instances) {
    instance_text << instance_to_jsonl(inst) << '\n';
  }
  std::istringstream in(instance_text.str());
  std::ostringstream out;
  JsonlInstanceSource source(in);
  JsonlResultSink sink(out);
  StreamOptions stream;
  stream.threads = 2;
  const StreamStats stats = solve_stream(*make_solver("sbo:lpt,delta=1"),
                                         source, sink, {}, stream);
  EXPECT_EQ(stats.delivered, instances.size());

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"index\":" + std::to_string(count)),
              std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, instances.size());
}

}  // namespace
}  // namespace storesched
