// Tests for the Section 4 negative results: lemma witness points, the
// impossibility-domain frontier behind Figure 3, and cross-validation of
// the claims against exhaustive enumeration of the gadget instances.
#include "core/impossibility.hpp"

#include <gtest/gtest.h>

#include "common/paper_instances.hpp"
#include "core/pareto_enum.hpp"

namespace storesched {
namespace {

TEST(Lemma1, WitnessPoints) {
  const auto pts = lemma1_bounds();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], (RatioPoint{Fraction(1), Fraction(2)}));
  EXPECT_EQ(pts[1], (RatioPoint{Fraction(2), Fraction(1)}));
}

TEST(Lemma2, IntegerWitnessFormula) {
  // m=2, k=2: i=0 -> (1, 2); i=1 -> (1 + 1/4, 1 + 1/2); i=2 -> (3/2, 1).
  EXPECT_EQ(lemma2_bound(2, 2, 0), (RatioPoint{Fraction(1), Fraction(2)}));
  EXPECT_EQ(lemma2_bound(2, 2, 1),
            (RatioPoint{Fraction(5, 4), Fraction(3, 2)}));
  EXPECT_EQ(lemma2_bound(2, 2, 2), (RatioPoint{Fraction(3, 2), Fraction(1)}));
  EXPECT_THROW(lemma2_bound(1, 2, 0), std::invalid_argument);
  EXPECT_THROW(lemma2_bound(2, 2, 3), std::invalid_argument);
}

TEST(Lemma2, ContinuousMatchesIntegerAtGridPoints) {
  for (int m = 2; m <= 5; ++m) {
    for (int k = 2; k <= 4; ++k) {
      for (int i = 0; i <= k; ++i) {
        const RatioPoint a = lemma2_bound(m, k, i);
        const RatioPoint b = lemma2_bound_continuous(m, Fraction(i, k));
        // The continuous x uses u/m = i/(km): identical.
        EXPECT_EQ(a.x, b.x);
        EXPECT_EQ(a.y, b.y);
      }
    }
  }
}

TEST(Lemma3, Witness) {
  EXPECT_EQ(lemma3_bound(), (RatioPoint{Fraction(3, 2), Fraction(3, 2)}));
}

TEST(Frontier, KeyValues) {
  // At x = 1 the binding constraint is Lemma 2 with the largest m: y = m.
  EXPECT_EQ(impossibility_frontier(Fraction(1), 6), Fraction(6));
  EXPECT_EQ(impossibility_frontier(Fraction(1), 3), Fraction(3));
  // Just below 3/2, Lemma 3 keeps the frontier at >= 3/2.
  EXPECT_TRUE(Fraction(3, 2) <=
              impossibility_frontier(Fraction(149, 100), 6));
  // At x = 5/2 only the symmetric Lemma 2 segments bite; with m <= 6 the
  // binding one is m = 4 (or 5): u_max = 1/2 -> y = 1 + (1/2)/4 = 9/8.
  EXPECT_EQ(impossibility_frontier(Fraction(5, 2), 6), Fraction(9, 8));
  // Beyond x = max_m every constraint is exhausted: frontier collapses to 1.
  EXPECT_EQ(impossibility_frontier(Fraction(6), 6), Fraction(1));
}

TEST(Frontier, MonotoneNonIncreasing) {
  Fraction prev = impossibility_frontier(Fraction(1), 6);
  for (int step = 1; step <= 30; ++step) {
    const Fraction x = Fraction(1) + Fraction(step, 20);  // 1 .. 2.5
    const Fraction cur = impossibility_frontier(x, 6);
    EXPECT_TRUE(cur <= prev) << "x = " << x.to_string();
    prev = cur;
  }
}

TEST(Frontier, SymmetricPairs) {
  // The domain is symmetric: frontier_y(x) >= y iff frontier_y(y) >= x
  // cannot be asserted pointwise, but the lemma-2 symmetric segments must
  // make (x, y) and (y, x) equally impossible.
  const std::vector<std::pair<Fraction, Fraction>> pts{
      {Fraction(11, 10), Fraction(5, 4)},
      {Fraction(6, 5), Fraction(11, 8)},
      {Fraction(4, 3), Fraction(4, 3)},
  };
  for (const auto& [x, y] : pts) {
    EXPECT_EQ(is_impossible(x, y, 6), is_impossible(y, x, 6))
        << x.to_string() << "," << y.to_string();
  }
}

TEST(Impossible, LemmaWitnessesAreBoundary) {
  // Strictly inside every witness: impossible. At/above it: not proven
  // impossible by that witness alone.
  EXPECT_TRUE(is_impossible(Fraction(99, 100), Fraction(199, 100), 6));
  EXPECT_TRUE(is_impossible(Fraction(149, 100), Fraction(149, 100), 6));
  EXPECT_FALSE(is_impossible(Fraction(2), Fraction(2), 6));
  EXPECT_FALSE(is_impossible(Fraction(3, 2), Fraction(2), 6));
}

TEST(SboCurve, NeverEntersImpossibleDomain) {
  // Corollary 1's achievable curve (1 + Delta, 1 + 1/Delta) must stay out
  // of the impossibility domain for every Delta -- otherwise the paper
  // would contradict itself.
  for (int num = 1; num <= 40; ++num) {
    const Fraction delta(num, 10);  // 0.1 .. 4.0
    const RatioPoint pt = sbo_curve_point(delta);
    EXPECT_FALSE(is_impossible(pt.x, pt.y, 8))
        << "Delta = " << delta.to_string();
  }
}

TEST(SboCurve, EndpointBehaviour) {
  EXPECT_EQ(sbo_curve_point(Fraction(1)),
            (RatioPoint{Fraction(2), Fraction(2)}));
  EXPECT_EQ(sbo_curve_point(Fraction(1, 2)),
            (RatioPoint{Fraction(3, 2), Fraction(3)}));
  EXPECT_THROW(sbo_curve_point(Fraction(0)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cross-validation against exhaustive enumeration: the gadget instances
// really do exclude the claimed ratio pairs.
// ---------------------------------------------------------------------------

TEST(CrossCheck, Figure1InstanceExcludesOneSevenFourths) {
  // Section 4.1: a (1, 7/4)-approximation cannot exist. Enumerate the
  // scaled gadget: no schedule has Cmax <= 1 * C* AND Mmax <= 7/4 * M*.
  const Instance inst = fig1_instance(100);
  const auto enumeration = enumerate_pareto(inst);
  const Time c_star = enumeration.optimal_cmax();
  const Mem m_star = enumeration.optimal_mmax();
  for (const LabelledPoint& pt : enumeration.front) {
    const bool both = Fraction(pt.value.cmax) <= Fraction(c_star) &&
                      Fraction(pt.value.mmax) * Fraction(4) <=
                          Fraction(7) * Fraction(m_star);
    EXPECT_FALSE(both) << "a (1, 7/4)-approximation would exist";
  }
}

TEST(CrossCheck, Lemma2InstancePointsAreParetoOptimal) {
  // For m=2, k=3: the k+1 described solutions are exactly the Pareto set.
  const int m = 2;
  const int k = 3;
  const Time eps_inv = 60;
  const Instance inst = lemma2_instance(m, k, eps_inv);
  const auto enumeration = enumerate_pareto(inst);
  ASSERT_EQ(enumeration.front.size(), static_cast<std::size_t>(k + 1));

  const auto scale = lemma2_scale(m, k, eps_inv);
  for (int i = 0; i <= k; ++i) {
    // Solution i: makespan (1 + i/(km)) * km_scaled, memory
    // (k + (k-i)(m-1)) * eps_inv for i < k, k * eps_inv + 1 for i = k.
    const Time expect_c = scale.time_scale + i;  // km + i in scaled units
    const Mem expect_m =
        i == k ? k * eps_inv + 1
               : (k + (static_cast<Mem>(k) - i) * (m - 1)) * eps_inv;
    const auto& pt = enumeration.front[static_cast<std::size_t>(i)];
    EXPECT_EQ(pt.value.cmax, expect_c) << "i = " << i;
    EXPECT_EQ(pt.value.mmax, expect_m) << "i = " << i;
  }
}

TEST(CrossCheck, Lemma3InstanceExcludesBetterThanThreeHalves) {
  // Section 4.3 with eps close to 1/2: no schedule beats (3/2, 3/2).
  const Instance inst = fig2_instance(2);  // eps = 1/2 exactly
  const auto enumeration = enumerate_pareto(inst);
  const Time c_star = enumeration.optimal_cmax();
  const Mem m_star = enumeration.optimal_mmax();
  for (const LabelledPoint& pt : enumeration.front) {
    const bool both_strict =
        Fraction(pt.value.cmax) * Fraction(2) < Fraction(3) * Fraction(c_star) &&
        Fraction(pt.value.mmax) * Fraction(2) < Fraction(3) * Fraction(m_star);
    EXPECT_FALSE(both_strict);
  }
}

}  // namespace
}  // namespace storesched
