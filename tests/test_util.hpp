// Shared helpers for the storesched test suite.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/instance.hpp"
#include "common/types.hpp"

namespace storesched::testing {

/// Builds an independent instance from parallel p/s vectors.
inline Instance make_instance(std::vector<Time> p, std::vector<Mem> s, int m) {
  std::vector<Task> tasks;
  tasks.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) tasks.push_back({p[i], s[i]});
  return Instance(std::move(tasks), m);
}

/// Extracts the processing-time weights of an instance.
inline std::vector<std::int64_t> p_weights(const Instance& inst) {
  std::vector<std::int64_t> w;
  w.reserve(inst.n());
  for (const Task& t : inst.tasks()) w.push_back(t.p);
  return w;
}

/// Extracts the storage weights of an instance.
inline std::vector<std::int64_t> s_weights(const Instance& inst) {
  std::vector<std::int64_t> w;
  w.reserve(inst.n());
  for (const Task& t : inst.tasks()) w.push_back(t.s);
  return w;
}

/// Exhaustive optimum of the min-max-subset-sum problem (reference
/// implementation for cross-checking the real algorithms; m^n work).
inline std::int64_t brute_force_partition(std::span<const std::int64_t> w,
                                          int m) {
  const std::size_t n = w.size();
  std::int64_t best = 0;
  for (const std::int64_t v : w) best += v;  // everything on one processor
  std::vector<int> choice(n, 0);
  while (true) {
    std::vector<std::int64_t> load(static_cast<std::size_t>(m), 0);
    for (std::size_t i = 0; i < n; ++i) {
      load[static_cast<std::size_t>(choice[i])] += w[i];
    }
    std::int64_t mx = 0;
    for (const std::int64_t l : load) mx = std::max(mx, l);
    best = std::min(best, mx);
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < n && ++choice[pos] == m) choice[pos++] = 0;
    if (pos == n) break;
  }
  return best;
}

}  // namespace storesched::testing
