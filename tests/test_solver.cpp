// Tests for the unified solver API (core/solver.hpp): registry round-trips,
// spec-error reporting, Capabilities enforcement, equivalence with the
// underlying per-algorithm functions, solve_batch, and the generic front().
#include "core/solver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "common/dag.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/constrained.hpp"
#include "core/stream.hpp"
#include "core/theory.hpp"
#include "core/triobjective.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

Instance small_dag_instance() {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  return Instance({{2, 1}, {3, 2}, {1, 1}}, 2, dag);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(SolverRegistry, EveryRegisteredSpecRoundTrips) {
  const std::vector<std::string> specs = registered_solver_specs();
  ASSERT_FALSE(specs.empty());
  for (const std::string& spec : specs) {
    const auto solver = make_solver(spec);
    EXPECT_EQ(solver->name(), spec) << "canonical spec does not round-trip";
    // Round-tripping the canonical name again is a fixed point.
    EXPECT_EQ(make_solver(solver->name())->name(), solver->name());
  }
}

TEST(SolverRegistry, DefaultsAreFilledIntoCanonicalNames) {
  EXPECT_EQ(make_solver("sbo")->name(), "sbo:lpt,delta=1");
  EXPECT_EQ(make_solver("sbo:lpt")->name(), "sbo:lpt,delta=1");
  EXPECT_EQ(make_solver("sbo:lpt/lpt")->name(), "sbo:lpt,delta=1");
  EXPECT_EQ(make_solver("sbo:ls/multifit,delta=3/2")->name(),
            "sbo:ls/multifit,delta=3/2");
  EXPECT_EQ(make_solver("rls")->name(), "rls:input,delta=3");
  EXPECT_EQ(make_solver("rls:bottom,delta=5/2")->name(),
            "rls:bottom,delta=5/2");
  EXPECT_EQ(make_solver("tri")->name(), "tri:spt,delta=3");
  EXPECT_EQ(make_solver("constrained:rls")->name(),
            "constrained:rls,tiebreak=input");
  EXPECT_EQ(make_solver("constrained:sbo")->name(),
            "constrained:sbo,alg=lpt,refinements=16");
  EXPECT_EQ(make_solver("graham:lpt")->name(), "graham:lpt");
}

/// The offending token must appear verbatim in the error message.
void expect_throws_naming(const std::string& spec, const std::string& token) {
  try {
    make_solver(spec);
    FAIL() << "make_solver(\"" << spec << "\") did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
        << "message \"" << e.what() << "\" does not name token \"" << token
        << "\"";
  }
}

TEST(SolverRegistry, UnknownSpecsThrowNamingTheToken) {
  expect_throws_naming("simulated-annealing", "simulated-annealing");
  expect_throws_naming("sbo:quantum", "quantum");
  expect_throws_naming("sbo:lpt/quantum", "quantum");
  expect_throws_naming("rls:random", "random");
  expect_throws_naming("rls:input,delta=abc", "abc");
  expect_throws_naming("rls:input,delta=1/0", "1/0");
  expect_throws_naming("sbo:lpt,budget=3", "budget=3");
  expect_throws_naming("tri:lpt", "lpt");
  expect_throws_naming("constrained:greedy", "greedy");
  expect_throws_naming("constrained:sbo,refinements=many", "many");
  expect_throws_naming("constrained:sbo,refinements=16x", "16x");
  expect_throws_naming("constrained:sbo,refinements=7.9", "7.9");
  expect_throws_naming("graham:fastest", "fastest");
  expect_throws_naming("rls:input,delta", "delta");
}

TEST(SolverRegistry, NonPositiveDeltaIsRejectedAtConstruction) {
  EXPECT_THROW(make_solver("sbo:lpt,delta=0"), std::invalid_argument);
  EXPECT_THROW(make_solver("rls:input,delta=0"), std::invalid_argument);
  EXPECT_THROW(make_solver("tri:spt,delta=0"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Capabilities.
// ---------------------------------------------------------------------------

TEST(SolverCapabilities, SboRejectsPrecedenceInstances) {
  // Paper Section 3: SBO cannot be extended to precedence constraints.
  const auto solver = make_solver("sbo:lpt,delta=1");
  EXPECT_FALSE(solver->capabilities(2).supports_precedence);
  EXPECT_THROW(solver->solve(small_dag_instance()), std::logic_error);
}

TEST(SolverCapabilities, TriRejectsPrecedenceInstances) {
  const auto solver = make_solver("tri:spt,delta=3");
  EXPECT_FALSE(solver->capabilities(2).supports_precedence);
  EXPECT_THROW(solver->solve(small_dag_instance()), std::logic_error);
}

TEST(SolverCapabilities, RlsAcceptsPrecedenceInstances) {
  const auto solver = make_solver("rls:bottom,delta=3");
  EXPECT_TRUE(solver->capabilities(2).supports_precedence);
  const SolveResult r = solver->solve(small_dag_instance());
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.schedule.timed());
}

TEST(SolverCapabilities, ConstrainedSolversRequireCapacity) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  for (const char* spec : {"constrained:rls", "constrained:sbo"}) {
    const auto solver = make_solver(spec);
    EXPECT_TRUE(solver->capabilities(2).needs_capacity);
    EXPECT_THROW(solver->solve(inst), std::invalid_argument);
    const SolveResult r = solver->solve(inst, {.memory_capacity = 100});
    EXPECT_TRUE(r.feasible);
    EXPECT_LE(r.objectives.mmax, 100);
  }
}

TEST(SolverCapabilities, GuaranteeRatiosMatchTheoryFormulas) {
  const Fraction delta(3, 2);
  const auto sbo = make_solver("sbo:lpt,delta=3/2");
  const Capabilities sc = sbo->capabilities(4);
  const Fraction lpt_ratio = make_scheduler("lpt")->ratio(4);
  EXPECT_EQ(*sc.cmax_ratio, sbo_cmax_ratio(delta, lpt_ratio));
  EXPECT_EQ(*sc.mmax_ratio, sbo_mmax_ratio(delta, lpt_ratio));
  EXPECT_FALSE(sc.sumci_ratio.has_value());

  const auto tri = make_solver("tri:spt,delta=4");
  const Capabilities tc = tri->capabilities(4);
  EXPECT_EQ(*tc.cmax_ratio, rls_cmax_ratio(Fraction(4), 4));
  EXPECT_EQ(*tc.mmax_ratio, Fraction(4));
  EXPECT_EQ(*tc.sumci_ratio, rls_sumci_ratio(Fraction(4)));
}

// ---------------------------------------------------------------------------
// The RLS precondition ladder: Delta > 0 runs, Delta > 1 for Lemma 4,
// Delta > 2 for the Corollary 2-3 guarantees.
// ---------------------------------------------------------------------------

TEST(SolverRlsPreconditions, BelowTwoCarriesNoGuaranteeButMayRun) {
  const auto solver = make_solver("rls:input,delta=3/2");
  const Capabilities caps = solver->capabilities(2);
  EXPECT_FALSE(caps.cmax_ratio.has_value());
  EXPECT_FALSE(caps.mmax_ratio.has_value());

  // Loose instance: feasible even at Delta = 3/2, but flagged as outside
  // the guarantee zone.
  const Instance loose = make_instance({1, 1, 1, 1}, {1, 1, 1, 1}, 4);
  const SolveResult ok = solver->solve(loose);
  EXPECT_TRUE(ok.feasible);
  EXPECT_FALSE(ok.cmax_ratio.has_value());
  EXPECT_NE(ok.diagnostics.find("guarantee zone"), std::string::npos);

  // Tight instance: two big codes cannot share a processor under the cap.
  const Instance tight = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const SolveResult stuck = make_solver("rls:input,delta=1")->solve(tight);
  EXPECT_FALSE(stuck.feasible);
  EXPECT_TRUE(stuck.rls->stuck_task.has_value());
  EXPECT_NE(stuck.diagnostics.find("infeasible"), std::string::npos);
}

TEST(SolverRlsPreconditions, AboveTwoGuaranteesFeasibilityAndRatios) {
  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(5, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_uniform(gp, rng);
    const SolveResult r = make_solver("rls:input,delta=21/10")->solve(inst);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(*r.cmax_ratio, rls_cmax_ratio(Fraction(21, 10), inst.m()));
    EXPECT_EQ(*r.mmax_ratio, Fraction(21, 10));
    EXPECT_TRUE(Fraction(r.objectives.mmax) <= *r.mmax_bound);
  }
}

TEST(SolverRlsPreconditions, MarkedBoundRequiresDeltaAboveOne) {
  // Lemma 4's floor(m/(Delta-1)) degenerates at Delta <= 1.
  EXPECT_THROW(rls_marked_bound(Fraction(1), 4), std::invalid_argument);
  EXPECT_THROW(rls_marked_bound(Fraction(1, 2), 4), std::invalid_argument);
  EXPECT_EQ(rls_marked_bound(Fraction(3), 4), 2);
}

// ---------------------------------------------------------------------------
// Equivalence with the thin per-algorithm wrappers.
// ---------------------------------------------------------------------------

TEST(SolverEquivalence, SboSolverMatchesSboSchedule) {
  Rng rng(77);
  GenParams gp;
  gp.n = 30;
  gp.m = 3;
  const Instance inst = generate_anticorrelated(gp, 0.2, rng);
  const auto solver = make_solver("sbo:lpt,delta=3/2");
  const SolveResult via_solver = solver->solve(inst);
  const SboResult direct =
      sbo_schedule(inst, Fraction(3, 2), *make_scheduler("lpt"));
  EXPECT_EQ(via_solver.schedule, direct.schedule);
  EXPECT_EQ(*via_solver.cmax_bound, direct.cmax_bound);
  EXPECT_EQ(*via_solver.mmax_bound, direct.mmax_bound);
  ASSERT_TRUE(via_solver.sbo.has_value());
  EXPECT_EQ(via_solver.sbo->pi1, direct.pi1);
  EXPECT_EQ(via_solver.sbo->pi2, direct.pi2);
}

TEST(SolverEquivalence, RlsSolverMatchesRlsSchedule) {
  Rng rng(78);
  const Instance inst = generate_dag_by_name("layered", 40, 3, {}, rng);
  const SolveResult via_solver =
      make_solver("rls:bottom,delta=5/2")->solve(inst);
  const RlsResult direct =
      rls_schedule(inst, Fraction(5, 2), PriorityPolicy::kBottomLevel);
  ASSERT_TRUE(via_solver.feasible);
  EXPECT_EQ(via_solver.schedule, direct.schedule);
  EXPECT_EQ(via_solver.rls->marked_count, direct.marked_count);
  EXPECT_EQ(via_solver.objectives, objectives(inst, direct.schedule));
  EXPECT_EQ(*via_solver.sum_ci, sum_completion_times(inst, direct.schedule));
}

TEST(SolverEquivalence, TriSolverMatchesTriObjectiveSchedule) {
  Rng rng(79);
  GenParams gp;
  gp.n = 25;
  gp.m = 3;
  const Instance inst = generate_uniform(gp, rng);
  const SolveResult via_solver = make_solver("tri:spt,delta=3")->solve(inst);
  const TriObjectiveResult direct = tri_objective_schedule(inst, Fraction(3));
  ASSERT_TRUE(via_solver.feasible);
  EXPECT_EQ(via_solver.schedule, direct.rls.schedule);
  EXPECT_EQ(*via_solver.sum_ci, direct.objectives.sum_ci);
  EXPECT_EQ(*via_solver.sumci_ratio, direct.sumci_ratio);
}

TEST(SolverEquivalence, ConstrainedSolversMatchDirectCalls) {
  Rng rng(80);
  GenParams gp;
  gp.n = 40;
  gp.m = 4;
  const Instance inst = generate_uniform(gp, rng);
  const Mem cap = (inst.storage_lower_bound_fraction() * Fraction(3)).ceil();

  const SolveResult via_solver =
      make_solver("constrained:rls")->solve(inst, {.memory_capacity = cap});
  const ConstrainedResult direct = solve_constrained_rls(inst, cap);
  ASSERT_TRUE(via_solver.feasible);
  ASSERT_TRUE(direct.feasible);
  EXPECT_EQ(via_solver.schedule, direct.schedule);
  EXPECT_EQ(via_solver.delta, direct.delta_used);

  const SolveResult sbo_solver =
      make_solver("constrained:sbo")->solve(inst, {.memory_capacity = cap});
  const ConstrainedResult sbo_direct = solve_constrained_sbo(
      inst, cap, *make_scheduler("lpt"), *make_scheduler("lpt"));
  ASSERT_TRUE(sbo_solver.feasible);
  ASSERT_TRUE(sbo_direct.feasible);
  EXPECT_EQ(sbo_solver.objectives, sbo_direct.objectives);
}

TEST(SolverOptions, ValidateFlagRunsTheValidator) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const SolveResult r =
      make_solver("rls:input,delta=3")->solve(inst, {.validate = true});
  EXPECT_TRUE(r.feasible);  // a correct schedule stays feasible
}

TEST(SolverOptions, CapacityIsIgnoredByUnconstrainedSolvers) {
  // SolveOptions::memory_capacity only binds constrained:* solvers; an
  // unconstrained solve with validation must not be failed against it.
  const Instance inst = make_instance({3, 2, 1}, {4, 5, 6}, 2);
  const SolveResult r = make_solver("sbo:lpt,delta=1")
                            ->solve(inst, {.memory_capacity = 1,
                                           .validate = true});
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.objectives.mmax, 1);
}

// ---------------------------------------------------------------------------
// solve_batch.
// ---------------------------------------------------------------------------

std::vector<Instance> batch_instances(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> out;
  for (int i = 0; i < count; ++i) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(10, 40));
    gp.m = static_cast<int>(rng.uniform_int(2, 6));
    out.push_back(generate_uniform(gp, rng));
  }
  return out;
}

TEST(SolveBatch, MatchesSerialResultsInOrder) {
  const std::vector<Instance> instances = batch_instances(24, 42);
  const auto solver = make_solver("sbo:lpt,delta=1");
  const std::vector<SolveResult> serial =
      solve_batch(*solver, instances, {}, {.threads = 1});
  const std::vector<SolveResult> parallel =
      solve_batch(*solver, instances, {}, {.threads = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].schedule, parallel[i].schedule) << "instance " << i;
    EXPECT_EQ(serial[i].objectives, parallel[i].objectives);
  }
}

TEST(SolveBatch, SpecOverloadAndEmptyInput) {
  EXPECT_TRUE(solve_batch("rls:input,delta=3", {}).empty());
  const std::vector<Instance> instances = batch_instances(3, 7);
  const std::vector<SolveResult> results =
      solve_batch("rls:input,delta=3", instances);
  ASSERT_EQ(results.size(), 3u);
  for (const SolveResult& r : results) EXPECT_TRUE(r.feasible);
}

TEST(SolveBatch, WorkerExceptionPropagates) {
  // A precedence instance in an SBO batch throws inside a worker thread;
  // the batch must rethrow on the caller, not crash or hang.
  std::vector<Instance> instances = batch_instances(8, 9);
  instances.push_back(small_dag_instance());
  EXPECT_THROW(
      solve_batch("sbo:lpt,delta=1", instances, {}, {.threads = 4}),
      std::logic_error);
}

TEST(SolveBatch, PassesOptionsThrough) {
  const std::vector<Instance> instances = batch_instances(6, 11);
  std::vector<SolveResult> results;
  ASSERT_NO_THROW(results = solve_batch("constrained:rls", instances,
                                        {.memory_capacity = 1'000'000},
                                        {.threads = 2}));
  for (const SolveResult& r : results) EXPECT_TRUE(r.feasible);
}

// ---------------------------------------------------------------------------
// Generic front().
// ---------------------------------------------------------------------------

TEST(SolverFront, GeneralizesSboFront) {
  Rng rng(90);
  GenParams gp;
  gp.n = 12;
  gp.m = 2;
  const Instance inst = generate_uniform(gp, rng);
  const auto grid = delta_grid(Fraction(1, 8), Fraction(8), 9);
  const ApproxFront generic = front(inst, "sbo:lpt", grid);
  const ApproxFront legacy = sbo_front(inst, *make_scheduler("lpt"), 9);
  ASSERT_EQ(generic.points.size(), legacy.points.size());
  for (std::size_t i = 0; i < generic.points.size(); ++i) {
    EXPECT_EQ(generic.points[i].value, legacy.points[i].value);
    EXPECT_EQ(generic.points[i].delta, legacy.points[i].delta);
  }
  EXPECT_EQ(generic.runs, 9);
}

TEST(SolverFront, GeneralizesRlsFront) {
  Rng rng(91);
  const Instance inst = generate_dag_by_name("layered", 30, 3, {}, rng);
  // Same grid construction as rls_front: Delta = 2 + geometric gap.
  const Fraction hi(16);
  std::vector<Fraction> grid;
  for (const Fraction& gap :
       delta_grid((hi - Fraction(2)) / Fraction(64), hi - Fraction(2), 9)) {
    grid.push_back(Fraction(2) + gap);
  }
  const ApproxFront generic = front(inst, "rls:bottom", grid);
  const ApproxFront legacy = rls_front(inst, 9, hi);
  ASSERT_EQ(generic.points.size(), legacy.points.size());
  for (std::size_t i = 0; i < generic.points.size(); ++i) {
    EXPECT_EQ(generic.points[i].value, legacy.points[i].value);
  }
}

TEST(SolverFront, TriSweepMatchesPerPointSolves) {
  Rng rng(92);
  GenParams gp;
  gp.n = 16;
  gp.m = 3;
  const Instance inst = generate_uniform(gp, rng);
  const auto grid = delta_grid(Fraction(9, 4), Fraction(6), 7);
  const ApproxFront swept = front(inst, "tri:spt", grid);
  std::vector<FrontPoint> serial;
  for (const Fraction& delta : grid) {
    SolveResult run =
        make_solver("tri:spt,delta=" + delta.to_string())->solve(inst);
    if (!run.feasible) continue;
    serial.push_back({delta, run.schedule, run.objectives});
  }
  const auto filtered = pareto_filter_front(std::move(serial));
  ASSERT_EQ(swept.points.size(), filtered.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(swept.points[i].value, filtered[i].value);
    EXPECT_EQ(swept.points[i].delta, filtered[i].delta);
  }
}

TEST(SolveBatch, NeverSpawnsMoreWorkersThanInstances) {
  // The clamp lives in parallel_worker_count (common/parallel.hpp), which
  // every batch and sweep goes through: a 2-instance batch on any box uses
  // at most 2 workers.
  EXPECT_LE(parallel_worker_count(2, 0), 2u);
  EXPECT_LE(parallel_worker_count(2, 32), 2u);
  const std::vector<Instance> instances = batch_instances(2, 13);
  const std::vector<SolveResult> wide =
      solve_batch("rls:input,delta=3", instances, {}, {.threads = 32});
  const std::vector<SolveResult> serial =
      solve_batch("rls:input,delta=3", instances, {}, {.threads = 1});
  ASSERT_EQ(wide.size(), 2u);
  for (std::size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(wide[i].schedule, serial[i].schedule);
  }
}

TEST(SolverFront, RejectsFamiliesWithoutDeltaKnob) {
  const Instance inst = make_instance({1, 2}, {2, 1}, 2);
  const std::vector<Fraction> grid{Fraction(1)};
  EXPECT_THROW(front(inst, "graham:lpt", grid), std::invalid_argument);
  EXPECT_THROW(front(inst, "constrained:rls", grid), std::invalid_argument);
}

TEST(SolverFront, SkipsInfeasibleRuns) {
  // Tight instance at small Delta: RLS runs below the guarantee zone drop
  // out of the front instead of poisoning it.
  const Instance tight = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const std::vector<Fraction> grid{Fraction(1), Fraction(3)};
  const ApproxFront f = front(tight, "rls:input", grid);
  EXPECT_EQ(f.runs, 2);
  ASSERT_EQ(f.points.size(), 1u);
  EXPECT_EQ(f.points.front().delta, Fraction(3));
}

// ---------------------------------------------------------------------------
// The fallback ladder (graceful degradation meta-solver).
// ---------------------------------------------------------------------------

TEST(FallbackSolver, SpecRoundTripsThroughTheRegistry) {
  const std::string spec = "fallback:pareto:exact;sbo:lpt,delta=3/2";
  EXPECT_EQ(make_solver(spec)->name(), spec);
}

TEST(FallbackSolver, DescendsWhenARungThrows) {
  // SBO rejects precedence instances; graham list scheduling does not.
  const auto solver = make_solver("fallback:sbo:lpt,delta=1;graham:lpt");
  const SolveResult r = solver->solve(small_dag_instance());
  ASSERT_TRUE(r.feasible);
  EXPECT_NE(r.diagnostics.find("fallback: answered by rung 2/2 (graham:lpt)"),
            std::string::npos)
      << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("rung 1 (sbo:lpt,delta=1) threw"),
            std::string::npos)
      << r.diagnostics;
}

TEST(FallbackSolver, DescendsWhenARungIsInfeasible) {
  // Delta = 1 is below RLS's guarantee zone on this tight instance;
  // Delta = 3 is inside it (SolverFront.SkipsInfeasibleRuns).
  const Instance tight = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const auto solver =
      make_solver("fallback:rls:input,delta=1;rls:input,delta=3");
  const SolveResult r = solver->solve(tight);
  ASSERT_TRUE(r.feasible);
  EXPECT_NE(r.diagnostics.find("answered by rung 2/2"), std::string::npos)
      << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("rung 1 (rls:input,delta=1) infeasible"),
            std::string::npos)
      << r.diagnostics;
  // The answering rung's result is the ladder's result.
  const SolveResult direct = make_solver("rls:input,delta=3")->solve(tight);
  EXPECT_EQ(r.schedule, direct.schedule);
  EXPECT_EQ(r.objectives, direct.objectives);
}

TEST(FallbackSolver, FinalRungInfeasibilityIsTheLadderAnswer) {
  const Instance tight = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const auto solver =
      make_solver("fallback:rls:input,delta=1;rls:lpt,delta=1");
  const SolveResult r = solver->solve(tight);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.diagnostics.find("answered by rung 2/2"), std::string::npos)
      << r.diagnostics;
}

TEST(FallbackSolver, FinalRungRunsDeadlineFree) {
  // A zero budget exhausts before rung 1 even starts; the anchor rung must
  // still answer feasibly, because it runs with the deadline stripped.
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  SolveOptions options;
  options.deadline = std::chrono::nanoseconds(0);
  const auto solver = make_solver("fallback:rls:input,delta=3;sbo:lpt,delta=1");
  const SolveResult r = solver->solve(inst, options);
  ASSERT_TRUE(r.feasible) << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("answered by rung 2/2"), std::string::npos)
      << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("skipped: deadline budget exhausted"),
            std::string::npos)
      << r.diagnostics;

  // Sanity: the same zero deadline without the ladder is demoted.
  const SolveResult direct =
      make_solver("rls:input,delta=3")->solve(inst, options);
  EXPECT_FALSE(direct.feasible);
}

TEST(FallbackSolver, DoesNotDescendOnCancellation) {
  // A cancelled run is not a failed rung: the shared pre-solve envelope
  // short-circuits the whole ladder before rung 1 runs, so descending
  // never burns the remaining rungs on work the caller walked away from.
  auto token = std::make_shared<CancelToken>();
  token->request_cancel();
  SolveOptions options;
  options.cancel = token;
  const auto solver = make_solver("fallback:rls:input,delta=3;sbo:lpt,delta=1");
  const SolveResult r =
      solver->solve(make_instance({1, 2}, {2, 1}, 2), options);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.diagnostics, "cancelled before solve");
  // No hand-over happened: a cancelled ladder never reports an answering
  // rung, and in particular never degrades to the anchor.
  EXPECT_EQ(r.diagnostics.find("answered by rung"), std::string::npos);
}

TEST(FallbackSolver, CapabilitiesAnchorOnTheFinalRungWithoutRatioPromises) {
  const auto solver = make_solver("fallback:pareto:exact;sbo:lpt,delta=1");
  const Capabilities caps = solver->capabilities(2);
  // Which rung answers decides the ratios, so the ladder promises none.
  EXPECT_FALSE(caps.cmax_ratio.has_value());
  EXPECT_FALSE(caps.mmax_ratio.has_value());
  // Quality flags hold only when every rung provides them.
  EXPECT_EQ(caps.exact_front,
            make_solver("pareto:exact")->capabilities(2).exact_front &&
                make_solver("sbo:lpt,delta=1")->capabilities(2).exact_front);
  // Instance support is the anchor's: SBO does not take DAGs, so neither
  // does this ladder (the exception-descent ladder above anchors on
  // graham:lpt and does).
  EXPECT_EQ(caps.supports_precedence,
            make_solver("sbo:lpt,delta=1")->capabilities(2)
                .supports_precedence);
}

TEST(FallbackSolver, RejectsDegenerateLadders) {
  EXPECT_THROW(make_solver("fallback:rls:input,delta=3"),
               std::invalid_argument);
  EXPECT_THROW(make_solver("fallback:rls:input,delta=3;;graham:lpt"),
               std::invalid_argument);
  EXPECT_THROW(
      make_solver("fallback:fallback:rls:input,delta=3;graham:lpt;graham:lpt"),
      std::invalid_argument);
}

}  // namespace
}  // namespace storesched
