// Unit tests for dominance and Pareto-front utilities.
#include "common/pareto.hpp"

#include <gtest/gtest.h>

namespace storesched {
namespace {

TEST(Dominance, BasicRelations) {
  EXPECT_TRUE(dominates({1, 2}, {1, 2}));
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(dominates({1, 3}, {2, 2}));
  EXPECT_TRUE(strictly_dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(strictly_dominates({1, 2}, {1, 2}));
}

TEST(ParetoFront, RemovesDominatedAndSorts) {
  const std::vector<ObjectivePoint> pts{{3, 1}, {1, 3}, {2, 2}, {3, 3}, {2, 4}};
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].value, (ObjectivePoint{1, 3}));
  EXPECT_EQ(front[1].value, (ObjectivePoint{2, 2}));
  EXPECT_EQ(front[2].value, (ObjectivePoint{3, 1}));
  EXPECT_TRUE(is_valid_front(front));
}

TEST(ParetoFront, DeduplicatesEqualPoints) {
  const std::vector<ObjectivePoint> pts{{1, 1}, {1, 1}, {1, 1}};
  const auto front = pareto_front(pts);
  EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFront, SinglePoint) {
  const std::vector<ObjectivePoint> pts{{5, 7}};
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].tag, 0);
}

TEST(ParetoFront, EmptyInput) {
  EXPECT_TRUE(pareto_front(std::span<const ObjectivePoint>{}).empty());
}

TEST(ParetoFront, TagsTrackOrigins) {
  const std::vector<ObjectivePoint> pts{{3, 1}, {1, 3}, {2, 5}};
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].tag, 1);  // (1,3)
  EXPECT_EQ(front[1].tag, 0);  // (3,1)
}

TEST(CoveredByFront, WeakCoverage) {
  const std::vector<ObjectivePoint> pts{{1, 3}, {3, 1}};
  const auto front = pareto_front(pts);
  EXPECT_TRUE(covered_by_front({1, 3}, front));   // equal counts
  EXPECT_TRUE(covered_by_front({2, 4}, front));   // dominated by (1,3)
  EXPECT_FALSE(covered_by_front({2, 2}, front));  // incomparable to both
  EXPECT_FALSE(covered_by_front({0, 0}, front));  // better than both
}

TEST(MergeFronts, UnionFront) {
  const std::vector<ObjectivePoint> a_pts{{1, 5}, {4, 2}};
  const std::vector<ObjectivePoint> b_pts{{2, 3}, {5, 1}};
  const auto a = pareto_front(a_pts);
  const auto b = pareto_front(b_pts);
  const auto merged = merge_fronts(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(is_valid_front(merged));
}

TEST(MergeFronts, DominationAcrossInputs) {
  const std::vector<ObjectivePoint> a_pts{{1, 1}};
  const std::vector<ObjectivePoint> b_pts{{2, 3}, {5, 1}};
  const auto merged =
      merge_fronts(pareto_front(a_pts), pareto_front(b_pts));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, (ObjectivePoint{1, 1}));
}

TEST(IsValidFront, RejectsBadFronts) {
  std::vector<LabelledPoint> bad{{{1, 3}, 0}, {{2, 3}, 1}};  // mmax not strictly decreasing
  EXPECT_FALSE(is_valid_front(bad));
  std::vector<LabelledPoint> good{{{1, 3}, 0}, {{2, 2}, 1}};
  EXPECT_TRUE(is_valid_front(good));
}

}  // namespace
}  // namespace storesched
