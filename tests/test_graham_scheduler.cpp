// Tests for Graham list scheduling on DAGs, the SPT schedule, priority
// policies, and the MakespanScheduler factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "algorithms/graham.hpp"
#include "algorithms/scheduler.hpp"
#include "common/dag_generators.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(PriorityOrder, PoliciesSortAsDocumented) {
  const Instance inst = make_instance({3, 1, 2}, {5, 9, 1}, 2);
  EXPECT_EQ(priority_order(inst, PriorityPolicy::kInputOrder),
            (std::vector<TaskId>{0, 1, 2}));
  EXPECT_EQ(priority_order(inst, PriorityPolicy::kSpt),
            (std::vector<TaskId>{1, 2, 0}));
  EXPECT_EQ(priority_order(inst, PriorityPolicy::kLpt),
            (std::vector<TaskId>{0, 2, 1}));
  EXPECT_EQ(priority_order(inst, PriorityPolicy::kSmallestStorage),
            (std::vector<TaskId>{2, 0, 1}));
  EXPECT_EQ(priority_order(inst, PriorityPolicy::kLargestStorage),
            (std::vector<TaskId>{1, 0, 2}));
}

TEST(PriorityOrder, BottomLevelUsesDag) {
  Dag d(3);
  d.add_edge(0, 1);  // 0 -> 1, task 2 free
  const Instance inst({{1, 1}, {5, 1}, {4, 1}}, 2, d);
  // Bottom levels: task0 = 6, task1 = 5, task2 = 4.
  EXPECT_EQ(priority_order(inst, PriorityPolicy::kBottomLevel),
            (std::vector<TaskId>{0, 1, 2}));
}

TEST(GrahamList, IndependentMatchesGreedy) {
  const Instance inst = make_instance({3, 3, 2, 2}, {1, 1, 1, 1}, 2);
  const Schedule sched = graham_list_schedule(inst);
  EXPECT_TRUE(validate_schedule(inst, sched, {.require_timed = true}).ok);
  EXPECT_EQ(cmax(inst, sched), 5);
}

TEST(GrahamList, RespectsPrecedences) {
  Rng rng(31);
  const Instance inst = generate_random_dag(40, 0.15, 3, {}, rng);
  const Schedule sched = graham_list_schedule(inst, PriorityPolicy::kBottomLevel);
  EXPECT_TRUE(validate_schedule(inst, sched, {.require_timed = true}).ok);
}

TEST(GrahamList, ChainSerializes) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  const Instance inst({{2, 1}, {3, 1}, {4, 1}}, 4, d);
  const Schedule sched = graham_list_schedule(inst);
  EXPECT_EQ(cmax(inst, sched), 9);  // pure chain: critical path
}

TEST(GrahamList, RatioBoundOnRandomDags) {
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_layered_dag(4, 5, 0.3, m, {}, rng);
    const Schedule sched =
        graham_list_schedule(inst, PriorityPolicy::kBottomLevel);
    const Time got = cmax(inst, sched);
    const Time lb = inst.time_lower_bound();
    // Graham: Cmax <= (2 - 1/m) C*max, and C*max >= lb.
    EXPECT_LE(got * m, (2 * m - 1) * std::max<Time>(lb, 1)) << trial;
  }
}

TEST(GrahamList, NoUnforcedIdleOnIndependent) {
  // With independent tasks a processor never idles while work remains:
  // makespan <= sum of any two... check the no-idle invariant directly.
  Rng rng(33);
  const Instance inst = make_instance({7, 3, 5, 1, 2, 6}, {1, 1, 1, 1, 1, 1}, 2);
  const Schedule sched = graham_list_schedule(inst);
  const auto loads = processor_loads(inst, sched);
  const Time span = cmax(inst, sched);
  // All processors busy until at least span - max_p.
  for (const Time load : loads) {
    EXPECT_GE(load, span - inst.max_p());
  }
}

TEST(Spt, OptimalSumCompletionOnSmallInstances) {
  // Cross-check SPT's sum Ci against exhaustive search over assignments and
  // orders: for identical machines, checking all assignments with SPT order
  // inside each machine is sufficient (exchange argument).
  const Instance inst = make_instance({4, 1, 3, 2}, {1, 1, 1, 1}, 2);
  const Schedule spt = spt_schedule(inst);
  EXPECT_TRUE(validate_schedule(inst, spt, {.require_timed = true}).ok);
  const Time spt_val = sum_completion_times(inst, spt);

  Time best = std::numeric_limits<Time>::max();
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<std::vector<Time>> per_proc(2);
    for (int i = 0; i < 4; ++i) {
      per_proc[static_cast<std::size_t>((mask >> i) & 1)].push_back(
          inst.task(i).p);
    }
    Time total = 0;
    for (auto& times : per_proc) {
      std::sort(times.begin(), times.end());
      Time clock = 0;
      for (const Time p : times) {
        clock += p;
        total += clock;
      }
    }
    best = std::min(best, total);
  }
  EXPECT_EQ(spt_val, best);
  EXPECT_EQ(optimal_sum_completion(inst), best);
}

TEST(Spt, RejectsPrecedence) {
  Dag d(1);
  const Instance inst({{1, 1}}, 1, d);
  EXPECT_THROW(spt_schedule(inst), std::logic_error);
}

TEST(SchedulerFactory, KnownNames) {
  for (const char* name :
       {"ls", "lpt", "multifit", "ptas2", "ptas3", "exact", "kopt4"}) {
    const auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr) << name;
    EXPECT_FALSE(sched->name().empty());
  }
  EXPECT_THROW(make_scheduler("bogus"), std::invalid_argument);
  EXPECT_THROW(make_scheduler("kopt99"), std::invalid_argument);
}

TEST(SchedulerFactory, RatioFormulas) {
  EXPECT_EQ(make_scheduler("ls")->ratio(4), Fraction(7, 4));
  EXPECT_EQ(make_scheduler("lpt")->ratio(3), Fraction(11, 9));
  EXPECT_EQ(make_scheduler("multifit")->ratio(2), Fraction(13, 11));
  EXPECT_EQ(make_scheduler("ptas2")->ratio(8), Fraction(3, 2));
  EXPECT_EQ(make_scheduler("ptas3")->ratio(8), Fraction(4, 3));
  EXPECT_EQ(make_scheduler("exact")->ratio(5), Fraction(1));
  // KOPT: 1 + (1 - 1/m)/(1 + floor(k/m)) with k=4, m=2 -> 1 + (1/2)/3 = 7/6.
  EXPECT_EQ(make_scheduler("kopt4")->ratio(2), Fraction(7, 6));
}

TEST(SchedulerFactory, AssignGoesThroughUnderlyingAlgorithm) {
  const std::vector<std::int64_t> w{5, 5, 5, 5};
  const auto sched = make_scheduler("lpt");
  const auto assign = sched->assign(w, 2);
  EXPECT_EQ(partition_value(w, assign, 2), 10);
}

}  // namespace
}  // namespace storesched
