// Tests for the min-max partition algorithms (the single-objective
// substrate of SBO): correctness against brute force on small instances and
// proven-ratio property sweeps on random ones.
#include "algorithms/partition.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::brute_force_partition;

TEST(PartitionBounds, LowerBoundFormulas) {
  const std::vector<std::int64_t> w{5, 3, 3, 3};
  EXPECT_EQ(partition_lower_bound(w, 2), 7);  // ceil(14/2)
  EXPECT_EQ(partition_lower_bound(w, 4), 5);  // max element
  EXPECT_EQ(partition_lower_bound_fraction(w, 4), Fraction(5));
  // With m = 3 the max element (5) still dominates 14/3.
  EXPECT_EQ(partition_lower_bound_fraction(w, 3), Fraction(5));
  // Drop the big element: now the average bound binds.
  const std::vector<std::int64_t> flat{3, 3, 3, 3, 3};
  EXPECT_EQ(partition_lower_bound_fraction(flat, 2), Fraction(15, 2));
}

TEST(PartitionBounds, RejectsBadInput) {
  const std::vector<std::int64_t> w{1};
  EXPECT_THROW(partition_lower_bound(w, 0), std::invalid_argument);
  const std::vector<std::int64_t> neg{-1};
  EXPECT_THROW(partition_lower_bound(neg, 1), std::invalid_argument);
}

TEST(PartitionValue, ComputesMaxLoad) {
  const std::vector<std::int64_t> w{4, 2, 6};
  const std::vector<ProcId> assign{0, 0, 1};
  EXPECT_EQ(partition_value(w, assign, 2), 6);
  const std::vector<ProcId> bad{0, 0, 2};
  EXPECT_THROW(partition_value(w, bad, 2), std::invalid_argument);
}

TEST(ListAssign, FollowsGreedyRule) {
  const std::vector<std::int64_t> w{3, 3, 2, 2};
  const auto assign = list_assign(w, 2);
  // 3->P0, 3->P1, 2->P0, 2->P1 by least-load with lowest-id ties.
  EXPECT_EQ(assign, (std::vector<ProcId>{0, 1, 0, 1}));
}

TEST(ListAssign, OrderedVariantUsesGivenOrder) {
  const std::vector<std::int64_t> w{1, 10};
  const std::vector<std::size_t> order{1, 0};
  const auto assign = list_assign_ordered(w, order, 2);
  EXPECT_EQ(assign[1], 0);  // the big weight placed first
  EXPECT_EQ(assign[0], 1);
  EXPECT_THROW(list_assign_ordered(w, std::vector<std::size_t>{0}, 2),
               std::invalid_argument);
}

TEST(LptAssign, ClassicWorstCaseStillWithinRatio) {
  // Graham's LPT worst case for m=2: {3,3,2,2,2}: LPT gives 7, OPT 6.
  const std::vector<std::int64_t> w{3, 3, 2, 2, 2};
  EXPECT_EQ(partition_value(w, lpt_assign(w, 2), 2), 7);
  EXPECT_EQ(brute_force_partition(w, 2), 6);
}

TEST(Orders, DecreasingAndIncreasingAreStable) {
  const std::vector<std::int64_t> w{4, 9, 4, 1};
  EXPECT_EQ(decreasing_order(w), (std::vector<std::size_t>{1, 0, 2, 3}));
  EXPECT_EQ(increasing_order(w), (std::vector<std::size_t>{3, 0, 2, 1}));
}

TEST(ExactDp, MatchesBruteForceSmall) {
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 4));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 9));
    std::vector<std::int64_t> w(n);
    for (auto& v : w) v = rng.uniform_int(1, 30);
    EXPECT_EQ(exact_dp_value(w, m), brute_force_partition(w, m))
        << "trial " << trial;
  }
}

TEST(ExactDp, GuardsSize) {
  const std::vector<std::int64_t> w(21, 1);
  EXPECT_THROW(exact_dp_value(w, 2), std::invalid_argument);
}

TEST(ExactBnb, MatchesDpOnRandomInstances) {
  Rng rng(22);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 5));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 14));
    std::vector<std::int64_t> w(n);
    for (auto& v : w) v = rng.uniform_int(1, 100);
    const auto assign = exact_bnb_assign(w, m);
    EXPECT_EQ(partition_value(w, assign, m), exact_dp_value(w, m))
        << "trial " << trial;
  }
}

TEST(ExactBnb, NodeLimitTriggers) {
  Rng rng(23);
  std::vector<std::int64_t> w(24);
  for (auto& v : w) v = rng.uniform_int(1000, 9999);
  EXPECT_THROW(exact_bnb_assign(w, 4, /*node_limit=*/10), std::runtime_error);
}

TEST(Multifit, NeverWorseThanThirteenElevenths) {
  Rng rng(24);
  for (int trial = 0; trial < 25; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 4));
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 12));
    std::vector<std::int64_t> w(n);
    for (auto& v : w) v = rng.uniform_int(1, 50);
    const std::int64_t opt = brute_force_partition(w, m);
    const std::int64_t got = partition_value(w, multifit_assign(w, m), m);
    EXPECT_LE(got * 11, opt * 13) << "trial " << trial;
    EXPECT_GE(got, opt);
  }
}

TEST(KOpt, FullPrefixIsExact) {
  Rng rng(25);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 3));
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 10));
    std::vector<std::int64_t> w(n);
    for (auto& v : w) v = rng.uniform_int(1, 40);
    const auto assign = kopt_assign(w, m, static_cast<int>(n));
    EXPECT_EQ(partition_value(w, assign, m), brute_force_partition(w, m))
        << "trial " << trial;
  }
}

TEST(KOpt, ZeroPrefixEqualsLptValueOrBetter) {
  Rng rng(26);
  std::vector<std::int64_t> w(20);
  for (auto& v : w) v = rng.uniform_int(1, 99);
  const auto kopt = kopt_assign(w, 3, 0);
  const auto lpt = lpt_assign(w, 3);
  EXPECT_EQ(partition_value(w, kopt, 3), partition_value(w, lpt, 3));
}

TEST(DualPtas, RejectsUnsupportedK) {
  const std::vector<std::int64_t> w{1, 2};
  EXPECT_THROW(dual_ptas_assign(w, 2, 1), std::invalid_argument);
  EXPECT_THROW(dual_ptas_assign(w, 2, 4), std::invalid_argument);
}

TEST(DualPtas, EmptyAndSingleton) {
  EXPECT_TRUE(dual_ptas_assign({}, 2, 2).empty());
  const std::vector<std::int64_t> w{7};
  const auto assign = dual_ptas_assign(w, 3, 3);
  EXPECT_EQ(partition_value(w, assign, 3), 7);
}

// ---------------------------------------------------------------------------
// Property sweeps: every heuristic respects its proven ratio against the
// exact optimum across generators and machine counts.
// ---------------------------------------------------------------------------

struct RatioCase {
  std::string alg;
  int m;
  std::uint64_t seed;
};

class PartitionRatioTest : public ::testing::TestWithParam<RatioCase> {};

TEST_P(PartitionRatioTest, RespectsProvenRatio) {
  const RatioCase& param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 12; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    std::vector<std::int64_t> w(n);
    for (auto& v : w) v = rng.uniform_int(1, 60);
    const std::int64_t opt = brute_force_partition(w, param.m);

    std::vector<ProcId> assign;
    Fraction ratio(1);
    if (param.alg == "ls") {
      assign = list_assign(w, param.m);
      ratio = Fraction(2 * param.m - 1, param.m);
    } else if (param.alg == "lpt") {
      assign = lpt_assign(w, param.m);
      ratio = Fraction(4 * param.m - 1, 3 * param.m);
    } else if (param.alg == "multifit") {
      assign = multifit_assign(w, param.m);
      ratio = Fraction(13, 11);
    } else if (param.alg == "kopt6") {
      assign = kopt_assign(w, param.m, 6);
      ratio = Fraction(1) + Fraction(param.m - 1, param.m * (1 + 6 / param.m));
    } else if (param.alg == "ptas2") {
      assign = dual_ptas_assign(w, param.m, 2);
      ratio = Fraction(3, 2);
    } else {
      assign = dual_ptas_assign(w, param.m, 3);
      ratio = Fraction(4, 3);
    }

    const std::int64_t got = partition_value(w, assign, param.m);
    EXPECT_GE(got, opt);
    // got <= ratio * opt, exactly.
    EXPECT_TRUE(Fraction(got) <= ratio * Fraction(opt))
        << param.alg << " m=" << param.m << " trial=" << trial << " got=" << got
        << " opt=" << opt;
    // Every weight assigned a real processor.
    for (const ProcId q : assign) {
      EXPECT_GE(q, 0);
      EXPECT_LT(q, param.m);
    }
  }
}

std::vector<RatioCase> ratio_cases() {
  std::vector<RatioCase> cases;
  std::uint64_t seed = 1000;
  for (const char* alg : {"ls", "lpt", "multifit", "kopt6", "ptas2", "ptas3"}) {
    for (const int m : {2, 3, 5}) {
      cases.push_back({alg, m, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PartitionRatioTest,
                         ::testing::ValuesIn(ratio_cases()),
                         [](const auto& param_info) {
                           std::string name = param_info.param.alg + "_m" +
                                              std::to_string(param_info.param.m);
                           for (auto& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace storesched
