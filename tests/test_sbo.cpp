// Tests for SBO_Delta (paper Section 3, Algorithm 1): exact Property 1-2
// inequalities, routing behaviour, degenerate inputs, and paper gadgets.
#include "core/sbo.hpp"

#include <gtest/gtest.h>

#include "common/generators.hpp"
#include "common/paper_instances.hpp"
#include "common/rng.hpp"
#include "core/theory.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(Sbo, RejectsBadInputs) {
  const ListSchedulerAlg ls;
  const Instance inst = make_instance({1}, {1}, 1);
  EXPECT_THROW(sbo_schedule(inst, Fraction(0), ls), std::invalid_argument);
  EXPECT_THROW(sbo_schedule(inst, Fraction(-1), ls), std::invalid_argument);

  Dag d(1);
  const Instance dag_inst({{1, 1}}, 1, d);
  EXPECT_THROW(sbo_schedule(dag_inst, Fraction(1), ls), std::logic_error);
}

TEST(Sbo, ThresholdRoutesExtremes) {
  // Task 0: long and tiny-code -> must come from pi_1.
  // Task 1: instant and huge-code -> must come from pi_2.
  const Instance inst = make_instance({100, 1, 50, 50}, {1, 100, 50, 50}, 2);
  const ListSchedulerAlg ls;
  const SboResult r = sbo_schedule(inst, Fraction(1), ls);
  EXPECT_FALSE(r.routed_to_pi2[0]);
  EXPECT_TRUE(r.routed_to_pi2[1]);
  EXPECT_EQ(r.schedule.proc(0), r.pi1.proc(0));
  EXPECT_EQ(r.schedule.proc(1), r.pi2.proc(1));
}

TEST(Sbo, ThresholdIsStrict) {
  // p_i/C == Delta s_i/M exactly: the paper's "<" keeps the task on pi_1.
  const Instance inst = make_instance({2, 2}, {2, 2}, 2);
  const ListSchedulerAlg ls;
  // C = 2, M = 2, Delta = 1: p/C = 1 = 1 * s/M for both tasks.
  const SboResult r = sbo_schedule(inst, Fraction(1), ls);
  EXPECT_FALSE(r.routed_to_pi2[0]);
  EXPECT_FALSE(r.routed_to_pi2[1]);
}

TEST(Sbo, AllZeroProcessingUsesPi2) {
  const Instance inst = make_instance({0, 0}, {5, 7}, 2);
  const ListSchedulerAlg ls;
  const SboResult r = sbo_schedule(inst, Fraction(1), ls);
  EXPECT_TRUE(r.routed_to_pi2[0]);
  EXPECT_TRUE(r.routed_to_pi2[1]);
  EXPECT_EQ(mmax(inst, r.schedule), r.m_ingredient);
}

TEST(Sbo, AllZeroStorageUsesPi1) {
  const Instance inst = make_instance({5, 7}, {0, 0}, 2);
  const ListSchedulerAlg ls;
  const SboResult r = sbo_schedule(inst, Fraction(1), ls);
  EXPECT_FALSE(r.routed_to_pi2[0]);
  EXPECT_FALSE(r.routed_to_pi2[1]);
  EXPECT_EQ(cmax(inst, r.schedule), r.c_ingredient);
}

TEST(Sbo, ExtremeDeltaDegeneratesToIngredients) {
  const Instance inst = make_instance({9, 4, 7, 2, 8}, {3, 9, 1, 8, 5}, 3);
  const LptSchedulerAlg lpt;
  // Huge Delta: everything satisfies p/C < Delta s/M (when s > 0).
  const SboResult big = sbo_schedule(inst, Fraction(1'000'000), lpt);
  for (std::size_t i = 0; i < inst.n(); ++i) {
    EXPECT_TRUE(big.routed_to_pi2[i]);
  }
  // Tiny Delta: nothing does.
  const SboResult small = sbo_schedule(inst, Fraction(1, 1'000'000), lpt);
  for (std::size_t i = 0; i < inst.n(); ++i) {
    EXPECT_FALSE(small.routed_to_pi2[i]);
  }
}

TEST(Sbo, SameAlgorithmOverloadMatchesTwoArgForm) {
  const Instance inst = make_instance({9, 4, 7}, {3, 9, 1}, 2);
  const LptSchedulerAlg lpt;
  const SboResult a = sbo_schedule(inst, Fraction(2), lpt);
  const SboResult b = sbo_schedule(inst, Fraction(2), lpt, lpt);
  EXPECT_EQ(a.schedule.assignment().size(), b.schedule.assignment().size());
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    EXPECT_EQ(a.schedule.proc(i), b.schedule.proc(i));
  }
}

TEST(Sbo, Figure1InstanceHitsGuarantee) {
  // Scaled Section 4.1 gadget; SBO must respect its own value bounds.
  const Instance inst = fig1_instance(100);
  const ListSchedulerAlg ls;
  for (const Fraction delta : {Fraction(1, 2), Fraction(1), Fraction(2)}) {
    const SboResult r = sbo_schedule(inst, delta, ls);
    EXPECT_TRUE(Fraction(cmax(inst, r.schedule)) <= r.cmax_bound);
    EXPECT_TRUE(Fraction(mmax(inst, r.schedule)) <= r.mmax_bound);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: Properties 1 and 2 hold exactly for every (generator,
// Delta, scheduler pair, m) combination across random instances, and the
// end-to-end ratios respect Corollary-1-style bounds against brute force.
// ---------------------------------------------------------------------------

struct SboCase {
  std::string generator;
  std::string scheduler;
  Fraction delta;
  int m;
  std::uint64_t seed;
};

class SboPropertyTest : public ::testing::TestWithParam<SboCase> {};

TEST_P(SboPropertyTest, PropertiesOneAndTwoHoldExactly) {
  const SboCase& param = GetParam();
  Rng rng(param.seed);
  const auto alg = make_scheduler(param.scheduler);
  for (int trial = 0; trial < 6; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(4, 40));
    gp.m = param.m;
    const Instance inst = generate_by_name(param.generator, gp, rng);

    const SboResult r = sbo_schedule(inst, param.delta, *alg);
    ASSERT_TRUE(r.schedule.fully_assigned());
    EXPECT_TRUE(validate_schedule(inst, r.schedule).ok);

    // Property 1: Cmax(pi_Delta) <= (1 + Delta) * Cmax(pi_1), exactly.
    EXPECT_TRUE(Fraction(cmax(inst, r.schedule)) <=
                (Fraction(1) + param.delta) * Fraction(r.c_ingredient))
        << "trial " << trial;
    // Property 2: Mmax(pi_Delta) <= (1 + 1/Delta) * Mmax(pi_2), exactly.
    EXPECT_TRUE(Fraction(mmax(inst, r.schedule)) <=
                (Fraction(1) + Fraction(1) / param.delta) *
                    Fraction(r.m_ingredient))
        << "trial " << trial;

    // End-to-end: measured values never beat the lower bounds. Both
    // ingredient schedulers here are list schedules, and Graham's proof
    // bounds a list schedule against the lower bound itself:
    // C <= (2 - 1/m) * LB. Hence Cmax <= (1+Delta)(2-1/m) * LB exactly
    // (and symmetrically for memory).
    const Fraction c_lb = inst.time_lower_bound_fraction();
    const Fraction m_lb = inst.storage_lower_bound_fraction();
    EXPECT_TRUE(c_lb <= Fraction(cmax(inst, r.schedule)));
    EXPECT_TRUE(m_lb <= Fraction(mmax(inst, r.schedule)));
    const Fraction ls_lb_ratio(2 * param.m - 1, param.m);
    EXPECT_TRUE(Fraction(cmax(inst, r.schedule)) <=
                sbo_cmax_ratio(param.delta, ls_lb_ratio) * c_lb)
        << "trial " << trial;
    EXPECT_TRUE(Fraction(mmax(inst, r.schedule)) <=
                sbo_mmax_ratio(param.delta, ls_lb_ratio) * m_lb)
        << "trial " << trial;
  }
}

std::vector<SboCase> sbo_cases() {
  std::vector<SboCase> cases;
  std::uint64_t seed = 5000;
  for (const char* gen : {"uniform", "anticorrelated", "correlated"}) {
    for (const char* alg : {"ls", "lpt"}) {
      for (const Fraction delta :
           {Fraction(1, 3), Fraction(1), Fraction(3)}) {
        for (const int m : {2, 4}) {
          cases.push_back({gen, alg, delta, m, seed++});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SboPropertyTest, ::testing::ValuesIn(sbo_cases()),
    [](const auto& param_info) {
      const SboCase& c = param_info.param;
      return c.generator + "_" + c.scheduler + "_d" +
             std::to_string(c.delta.num()) + "over" +
             std::to_string(c.delta.den()) + "_m" + std::to_string(c.m);
    });

}  // namespace
}  // namespace storesched
