// Tests for Delta-sweep approximate Pareto-front generation (the paper's
// Section 6 remark "all algorithms we provide can be tuned using the Delta
// parameter", made operational).
#include "core/front_approx.hpp"

#include <gtest/gtest.h>

#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/pareto_enum.hpp"
#include "core/sbo.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(DeltaGrid, EndpointsAndMonotonicity) {
  const auto grid = delta_grid(Fraction(1, 8), Fraction(8), 9);
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_EQ(grid.front(), Fraction(1, 8));
  EXPECT_EQ(grid.back(), Fraction(8));
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_TRUE(grid[i - 1] < grid[i]) << i;
  }
}

TEST(DeltaGrid, DegenerateAndInvalid) {
  EXPECT_EQ(delta_grid(Fraction(2), Fraction(5), 1),
            std::vector<Fraction>{Fraction(2)});
  EXPECT_THROW(delta_grid(Fraction(0), Fraction(1), 4), std::invalid_argument);
  EXPECT_THROW(delta_grid(Fraction(2), Fraction(1), 4), std::invalid_argument);
  EXPECT_THROW(delta_grid(Fraction(1), Fraction(2), 0), std::invalid_argument);
}

TEST(SboFront, PointsAreMutuallyNonDominatedAndValid) {
  Rng rng(111);
  const Instance inst = generate_anticorrelated(
      {.n = 24, .m = 3, .p_min = 1, .p_max = 60, .s_min = 1, .s_max = 60},
      0.2, rng);
  const LptSchedulerAlg lpt;
  const ApproxFront front = sbo_front(inst, lpt, 13);
  ASSERT_FALSE(front.points.empty());
  EXPECT_EQ(front.runs, 13);
  for (std::size_t i = 0; i < front.points.size(); ++i) {
    EXPECT_TRUE(validate_schedule(inst, front.points[i].schedule).ok);
    EXPECT_EQ(objectives(inst, front.points[i].schedule),
              front.points[i].value);
    if (i > 0) {
      EXPECT_LT(front.points[i - 1].value.cmax, front.points[i].value.cmax);
      EXPECT_GT(front.points[i - 1].value.mmax, front.points[i].value.mmax);
    }
  }
}

TEST(SboFront, PointsAreReproducibleFromTheirDelta) {
  // Each front point records the Delta that produced it; re-running SBO at
  // that Delta must reproduce the same objective values (determinism).
  Rng rng(112);
  const Instance inst = generate_uniform(
      {.n = 30, .m = 4, .p_min = 1, .p_max = 80, .s_min = 1, .s_max = 80}, rng);
  const LptSchedulerAlg lpt;
  const ApproxFront front = sbo_front(inst, lpt, 17);
  ASSERT_FALSE(front.points.empty());
  EXPECT_LE(front.points.size(), static_cast<std::size_t>(front.runs));
  for (const FrontPoint& pt : front.points) {
    const SboResult rerun = sbo_schedule(inst, pt.delta, lpt);
    EXPECT_EQ(objectives(inst, rerun.schedule), pt.value);
  }
}

TEST(RlsFront, FeasibleAboveTwoAndCapRespected) {
  Rng rng(113);
  const Instance inst = generate_uniform(
      {.n = 20, .m = 3, .p_min = 1, .p_max = 50, .s_min = 1, .s_max = 50}, rng);
  const ApproxFront front = rls_front(inst, 9, Fraction(10));
  ASSERT_FALSE(front.points.empty());
  for (const FrontPoint& pt : front.points) {
    EXPECT_TRUE(Fraction(pt.value.mmax) <=
                pt.delta * inst.storage_lower_bound_fraction());
  }
  EXPECT_THROW(rls_front(inst, 9, Fraction(2)), std::invalid_argument);
}

TEST(Coverage, ExactFrontCoveredWithinGuarantee) {
  // The approximate front's coverage epsilon against the exact front must
  // be finite and, for the SBO grid, below the worst guarantee on it.
  Rng rng(114);
  const LptSchedulerAlg lpt;
  for (int trial = 0; trial < 6; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(5, 9));
    gp.m = 2;
    const Instance inst = generate_uniform(gp, rng);
    const auto exact = enumerate_pareto(inst);
    const ApproxFront approx = sbo_front(inst, lpt, 17);
    const double eps = coverage_epsilon(approx.points, exact.front);
    EXPECT_GE(eps, 1.0);
    // Corollary 1 with the LPT ingredient and the grid's balanced point
    // Delta = 1 gives (1+1)*rho on both axes as a crude cap.
    const double cap = 2.0 * lpt.ratio(2).to_double() + 1e-9;
    EXPECT_LE(eps, cap) << "trial " << trial;
  }
}

TEST(Coverage, LargerExactFrontsViaBranchAndBound) {
  // Exact fronts at n = 20 (far past the brute-force walker's reach; the
  // dispatcher routes to the branch-and-bound engine) sharpen the coverage
  // study at sizes the approximate front is actually used at.
  Rng rng(115);
  const LptSchedulerAlg lpt;
  for (int trial = 0; trial < 3; ++trial) {
    GenParams gp;
    gp.n = 20;
    gp.m = 3;
    const Instance inst = generate_uniform(gp, rng);
    const auto exact = enumerate_pareto(inst);
    ASSERT_TRUE(is_valid_front(exact.front));
    const ApproxFront approx = sbo_front(inst, lpt, 17);
    const double eps = coverage_epsilon(approx.points, exact.front);
    EXPECT_GE(eps, 1.0);
    const double cap = 2.0 * lpt.ratio(3).to_double() + 1e-9;
    EXPECT_LE(eps, cap) << "trial " << trial;
  }
}

TEST(Coverage, IdenticalFrontsHaveEpsilonOne) {
  std::vector<FrontPoint> front;
  FrontPoint a;
  a.value = {2, 8};
  FrontPoint b;
  b.value = {5, 3};
  front.push_back(a);
  front.push_back(b);
  const std::vector<LabelledPoint> ref{{{2, 8}, 0}, {{5, 3}, 1}};
  EXPECT_DOUBLE_EQ(coverage_epsilon(front, ref), 1.0);
}

TEST(Coverage, EmptyInputsThrow) {
  const std::vector<LabelledPoint> ref{{{1, 1}, 0}};
  EXPECT_THROW(coverage_epsilon({}, ref), std::invalid_argument);
}

}  // namespace
}  // namespace storesched
