// Tests for the storage tier beyond the wire format itself
// (storage/canonical.hpp, storage/result_cache.hpp, storage/shm_store.hpp):
// cache-key canonicalization properties, bit-identical cache hits (always
// audited -- see kAuditEnv below), insertion exemptions, the raw seqlock
// table, shm publish/attach/republish under concurrency, and the
// solve_stream cache integration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/dag.hpp"
#include "common/instance.hpp"
#include "core/solver.hpp"
#include "core/stream.hpp"
#include "storage/canonical.hpp"
#include "storage/result_cache.hpp"
#include "storage/shm_store.hpp"
#include "storage/wire_format.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

// audit_enabled() latches STORESCHED_AUDIT once, at its first call; set it
// before main() so *every* cache hit in this binary is audit-verified
// against its instance (a poisoned hit throws instead of passing).
const bool kAuditEnv = [] {
  ::setenv("STORESCHED_AUDIT", "1", 1);
  return true;
}();

using storage::CacheKey;
using storage::CacheTable;
using storage::ShmStore;
using storage::SolveCache;
using testing::make_instance;

/// The serializer the acceptance criteria compare through: a hit must be
/// byte-identical to the cold solve on the full JSONL surface, schedule
/// included.
std::string full_jsonl(const SolveResult& result) {
  JsonlResultOptions options;
  options.include_schedule = true;
  return result_to_jsonl(0, result, options);
}

CacheKey key_of(const Instance& inst, std::string_view spec,
                const SolveOptions& options = {}) {
  const std::vector<TaskId> order = storage::canonical_order(inst);
  return storage::cache_key(inst, order, spec, options);
}

/// A mixed bag of instances worth caching: several shapes, one per line.
std::vector<Instance> cache_fixture_instances() {
  std::vector<Instance> out;
  out.push_back(make_instance({9, 1, 2, 7, 5}, {1, 8, 9, 3, 4}, 2));
  out.push_back(make_instance({4, 4, 4, 4}, {5, 5, 5, 5}, 2));
  out.push_back(make_instance({13}, {2}, 1));
  out.push_back(make_instance({6, 2, 8, 3, 1, 9, 4}, {2, 7, 1, 5, 9, 3, 6}, 3));
  return out;
}

// ---------------------------------------------------------------------------
// Canonical keys.
// ---------------------------------------------------------------------------

TEST(CanonicalKey, IsDeterministic) {
  const Instance inst = make_instance({3, 1, 2}, {1, 2, 3}, 2);
  EXPECT_EQ(key_of(inst, "graham:lpt"), key_of(inst, "graham:lpt"));
}

TEST(CanonicalKey, IsInvariantUnderTaskRelabeling) {
  // Independent tasks are interchangeable labels: the same multiset of
  // (p, s) pairs in any order must key identically.
  const Instance a = make_instance({9, 1, 2, 7}, {1, 8, 9, 3}, 2);
  const Instance b = make_instance({2, 7, 9, 1}, {9, 3, 1, 8}, 2);
  EXPECT_EQ(key_of(a, "graham:lpt"), key_of(b, "graham:lpt"));
}

TEST(CanonicalKey, SeparatesEverythingThatChangesASolve) {
  const Instance inst = make_instance({3, 1, 2}, {1, 2, 3}, 2);
  const CacheKey base = key_of(inst, "graham:lpt");

  // Different solver spec (algorithm, tie-breaks, Delta all live there).
  EXPECT_NE(base, key_of(inst, "sbo:lpt,delta=3/2"));

  // Different m.
  const Instance three = make_instance({3, 1, 2}, {1, 2, 3}, 3);
  EXPECT_NE(base, key_of(three, "graham:lpt"));

  // Different weights.
  const Instance heavier = make_instance({4, 1, 2}, {1, 2, 3}, 2);
  EXPECT_NE(base, key_of(heavier, "graham:lpt"));

  // Memory capacity: present vs absent, and its value.
  SolveOptions capped;
  capped.memory_capacity = 10;
  EXPECT_NE(base, key_of(inst, "graham:lpt", capped));
  SolveOptions capped_higher;
  capped_higher.memory_capacity = 11;
  EXPECT_NE(key_of(inst, "graham:lpt", capped),
            key_of(inst, "graham:lpt", capped_higher));

  // The validate flag turns violations into infeasible results, so it is
  // part of the key.
  SolveOptions validated;
  validated.validate = true;
  EXPECT_NE(base, key_of(inst, "graham:lpt", validated));
}

TEST(CanonicalKey, DeadlineAndCancelAreDeliberatelyNotKeyed) {
  // Results influenced by either are never inserted, so keying them would
  // only fragment the cache.
  const Instance inst = make_instance({3, 1, 2}, {1, 2, 3}, 2);
  SolveOptions with_deadline;
  with_deadline.deadline = std::chrono::seconds(5);
  EXPECT_EQ(key_of(inst, "graham:lpt"), key_of(inst, "graham:lpt", with_deadline));
  SolveOptions with_token;
  with_token.cancel = std::make_shared<CancelToken>();
  EXPECT_EQ(key_of(inst, "graham:lpt"), key_of(inst, "graham:lpt", with_token));
}

TEST(CanonicalKey, DagInstancesKeepTheirIdentity) {
  // Precedence makes task ids structural: the same weights under
  // different edges must key differently, and canonical order must be the
  // identity (no re-sorting of DAG nodes).
  std::vector<Task> tasks = {{3, 1}, {1, 2}, {2, 3}};
  Dag chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  Dag fork(3);
  fork.add_edge(0, 1);
  fork.add_edge(0, 2);
  const Instance a(tasks, 2, chain);
  const Instance b(tasks, 2, fork);
  EXPECT_NE(key_of(a, "graham:list"), key_of(b, "graham:list"));

  const std::vector<TaskId> order = storage::canonical_order(a);
  ASSERT_EQ(order.size(), 3u);
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(order[k], static_cast<TaskId>(k));
  }
}

// ---------------------------------------------------------------------------
// SolveCache: hits, exemptions, audit.
// ---------------------------------------------------------------------------

TEST(SolveCache, ExactDuplicateHitsAreBitIdenticalAcrossSpecs) {
  SolveCache cache;
  const std::vector<Instance> instances = cache_fixture_instances();
  const std::vector<std::string> specs = {"graham:lpt", "sbo:lpt,delta=3/2",
                                          "rls:bottom,delta=3"};
  SolveOptions options;
  std::uint64_t expected_hits = 0;
  for (const std::string& spec : specs) {
    const std::unique_ptr<Solver> solver = make_solver(spec);
    for (const Instance& inst : instances) {
      ASSERT_FALSE(cache.lookup(inst, spec, options).has_value());
      const SolveResult cold = solver->solve(inst, options);
      cache.insert(inst, spec, options, cold);
      const std::optional<SolveResult> warm = cache.lookup(inst, spec, options);
      ASSERT_TRUE(warm.has_value()) << spec;
      EXPECT_EQ(full_jsonl(cold), full_jsonl(*warm)) << spec;
      ++expected_hits;
    }
  }
  const storage::SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, expected_hits);
  EXPECT_EQ(stats.inserts, expected_hits);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(SolveCache, PermutedDuplicatesShareOneEntry) {
  // Insert under one labeling, hit under another: the remapped schedule
  // must cover the permuted instance's ids (the audit initializer above
  // re-validates it) and reproduce the same objectives.
  SolveCache cache;
  const std::string spec = "sbo:lpt,delta=3/2";
  const std::unique_ptr<Solver> solver = make_solver(spec);
  const Instance original = make_instance({9, 1, 2, 7, 5}, {1, 8, 9, 3, 4}, 2);
  const Instance permuted = make_instance({5, 7, 2, 1, 9}, {4, 3, 9, 8, 1}, 2);
  SolveOptions options;

  cache.insert(original, spec, options, solver->solve(original, options));
  const std::optional<SolveResult> warm = cache.lookup(permuted, spec, options);
  ASSERT_TRUE(warm.has_value());
  const SolveResult cold = solver->solve(permuted, options);
  EXPECT_EQ(cold.objectives.cmax, warm->objectives.cmax);
  EXPECT_EQ(cold.objectives.mmax, warm->objectives.mmax);
  ASSERT_EQ(warm->schedule.n(), permuted.n());
}

TEST(SolveCache, DeadlineSolvesAreNeverInserted) {
  SolveCache cache;
  const std::string spec = "graham:lpt";
  const std::unique_ptr<Solver> solver = make_solver(spec);
  const Instance inst = make_instance({3, 1, 2}, {1, 2, 3}, 2);
  SolveOptions options;
  options.deadline = std::chrono::hours(1);  // generous: the solve succeeds
  ASSERT_TRUE(storage::cache_exempt(options));

  cache.insert(inst, spec, options, solver->solve(inst, options));
  EXPECT_EQ(cache.stats().inserts, 0u);
  // Not even findable without the deadline: nothing was stored.
  EXPECT_FALSE(cache.lookup(inst, spec, SolveOptions{}).has_value());
}

TEST(SolveCache, ArmedButIdleCancelTokensStillInsert) {
  // An un-fired token cannot have truncated anything; only a fired one
  // exempts the result.
  SolveCache cache;
  const std::string spec = "graham:lpt";
  const std::unique_ptr<Solver> solver = make_solver(spec);
  const Instance inst = make_instance({3, 1, 2}, {1, 2, 3}, 2);

  SolveOptions idle;
  idle.cancel = std::make_shared<CancelToken>();
  ASSERT_FALSE(storage::cache_exempt(idle));
  cache.insert(inst, spec, idle, solver->solve(inst, idle));
  EXPECT_EQ(cache.stats().inserts, 1u);

  auto fired = std::make_shared<CancelToken>();
  fired->request_cancel("test");
  SolveOptions cancelled;
  cancelled.cancel = fired;
  EXPECT_TRUE(storage::cache_exempt(cancelled));
  const Instance other = make_instance({4, 4}, {1, 1}, 2);
  cache.insert(other, spec, cancelled, solver->solve(inst, SolveOptions{}));
  EXPECT_EQ(cache.stats().inserts, 1u);  // unchanged
}

TEST(SolveCache, HitsSurviveExtrasChannelsOnTheColdResult) {
  // SBO results carry an extras channel the payload format does not
  // store; the JSONL surface (which omits extras) must still match.
  SolveCache cache;
  const std::string spec = "sbo:lpt,delta=2";
  const std::unique_ptr<Solver> solver = make_solver(spec);
  const Instance inst = make_instance({6, 2, 8, 3, 1, 9, 4},
                                      {2, 7, 1, 5, 9, 3, 6}, 3);
  SolveOptions options;
  const SolveResult cold = solver->solve(inst, options);
  cache.insert(inst, spec, options, cold);
  const std::optional<SolveResult> warm = cache.lookup(inst, spec, options);
  ASSERT_TRUE(warm.has_value());
  EXPECT_FALSE(warm->sbo.has_value());  // extras are not cached ...
  EXPECT_EQ(full_jsonl(cold), full_jsonl(*warm));  // ... the wire is equal
}

// ---------------------------------------------------------------------------
// CacheTable: the raw seqlock region.
// ---------------------------------------------------------------------------

TEST(CacheTable, StoresAndOverwritesByKey) {
  CacheTable table(/*slot_count=*/16, /*payload_bytes=*/64);
  const CacheKey key{0x1111, 0x2222};
  EXPECT_FALSE(table.lookup(key).has_value());
  ASSERT_TRUE(table.insert(key, "first"));
  EXPECT_EQ(table.lookup(key), std::optional<std::string>("first"));
  ASSERT_TRUE(table.insert(key, "second, longer payload"));
  EXPECT_EQ(table.lookup(key), std::optional<std::string>("second, longer payload"));

  const storage::CacheTableStats stats = table.stats();
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes, std::string("second, longer payload").size());
}

TEST(CacheTable, OversizedPayloadsAreSkippedNotSplit) {
  CacheTable table(/*slot_count=*/4, /*payload_bytes=*/16);
  const std::string big(table.payload_capacity() + 1, 'x');
  EXPECT_FALSE(table.insert(CacheKey{1, 2}, big));
  EXPECT_FALSE(table.lookup(CacheKey{1, 2}).has_value());
  EXPECT_EQ(table.stats().skipped, 1u);
  EXPECT_EQ(table.stats().inserts, 0u);

  // The boundary itself fits.
  const std::string exact(table.payload_capacity(), 'y');
  EXPECT_TRUE(table.insert(CacheKey{1, 2}, exact));
  EXPECT_EQ(table.lookup(CacheKey{1, 2}), std::optional<std::string>(exact));
}

TEST(CacheTable, EvictsInsideAFullProbeWindowInsteadOfFailing) {
  // Degenerate single-slot table: every key collides, every insert after
  // the first evicts. It is a cache -- the last write must win.
  CacheTable table(/*slot_count=*/1, /*payload_bytes=*/32);
  ASSERT_TRUE(table.insert(CacheKey{1, 1}, "one"));
  ASSERT_TRUE(table.insert(CacheKey{2, 2}, "two"));
  EXPECT_EQ(table.lookup(CacheKey{2, 2}), std::optional<std::string>("two"));
  EXPECT_FALSE(table.lookup(CacheKey{1, 1}).has_value());
}

TEST(CacheTable, ExternalRegionRoundTripsThroughAttach) {
  const std::size_t slots = 8, payload = 64;
  const std::size_t bytes = CacheTable::required_bytes(slots, payload);
  std::vector<std::uint64_t> region(bytes / 8);

  CacheTable writer(region.data(), bytes, slots, payload, /*initialize=*/true);
  ASSERT_TRUE(writer.insert(CacheKey{7, 9}, "shared"));

  CacheTable reader(region.data(), bytes, slots, payload, /*initialize=*/false);
  EXPECT_EQ(reader.lookup(CacheKey{7, 9}), std::optional<std::string>("shared"));
  // Region-wide counters are shared words, not per-handle.
  EXPECT_EQ(writer.stats().hits, 1u);
}

TEST(CacheTable, AttachRejectsGarbageRegions) {
  const std::size_t slots = 8, payload = 64;
  const std::size_t bytes = CacheTable::required_bytes(slots, payload);
  std::vector<std::uint64_t> region(bytes / 8, 0xDEADBEEFCAFEF00D);
  EXPECT_THROW(CacheTable(region.data(), bytes, slots, payload,
                          /*initialize=*/false),
               std::runtime_error);
}

TEST(CacheTable, ConcurrentInsertersAndReadersNeverSeeTornPayloads) {
  // Hammer one small table from writer and reader threads; the seqlock
  // must only ever surface payloads that were written whole for that key.
  // (Run under TSan in CI; the assertions here catch torn data even
  // without it.)
  CacheTable table(/*slot_count=*/8, /*payload_bytes=*/64);
  constexpr int kKeys = 4;
  constexpr int kRounds = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kKeys; ++k) {
          const CacheKey key{static_cast<std::uint64_t>(k + 1), 0x55};
          if (const auto payload = table.lookup(key)) {
            // Valid payloads are "<k>:" followed by a run of one digit.
            const std::string prefix = std::to_string(k) + ":";
            if (payload->rfind(prefix, 0) != 0 ||
                payload->find_first_not_of(payload->back(), prefix.size()) !=
                    std::string::npos) {
              torn.fetch_add(1);
            }
          }
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        const int k = (round + w) % kKeys;
        const CacheKey key{static_cast<std::uint64_t>(k + 1), 0x55};
        const char digit = static_cast<char>('0' + (round % 10));
        const std::string payload =
            std::to_string(k) + ":" + std::string(8 + (round % 40), digit);
        table.insert(key, payload);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}

// ---------------------------------------------------------------------------
// ShmStore: publish, attach, republish, unlink.
// ---------------------------------------------------------------------------

/// Unique per-process store name; tests unlink what they create.
std::string test_store_name(const char* tag) {
  return std::string("storesched-test-") + tag + "-" +
         std::to_string(::getpid());
}

TEST(ShmStore, PublishAttachMaterializeUnlink) {
  const std::string name = test_store_name("basic");
  ShmStore::unlink(name);  // stale runs
  {
    ShmStore writer = ShmStore::create(name);
    EXPECT_EQ(writer.info().epoch, 0u);
    EXPECT_EQ(writer.snapshot(), nullptr);

    const std::vector<Instance> instances = cache_fixture_instances();
    writer.publish(wire::encode_instances(instances));

    ShmStore reader = ShmStore::attach(name);
    const ShmStore::Info info = reader.info();
    EXPECT_EQ(info.epoch, 1u);
    EXPECT_EQ(info.instances, instances.size());
    EXPECT_GT(info.data_bytes, 0u);

    const std::shared_ptr<storage::ShmMapping> snap = reader.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->epoch(), 1u);
    const wire::InstanceView view(snap->bytes());
    ASSERT_EQ(view.count(), instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const Instance got = view.materialize(i);
      EXPECT_EQ(got.m(), instances[i].m());
      ASSERT_EQ(got.n(), instances[i].n());
      for (std::size_t t = 0; t < got.n(); ++t) {
        EXPECT_EQ(got.task(static_cast<TaskId>(t)).p,
                  instances[i].task(static_cast<TaskId>(t)).p);
        EXPECT_EQ(got.task(static_cast<TaskId>(t)).s,
                  instances[i].task(static_cast<TaskId>(t)).s);
      }
    }
  }
  // Metadata + one epoch segment.
  EXPECT_EQ(ShmStore::unlink(name), 2u);
  EXPECT_EQ(ShmStore::unlink(name), 0u);
}

TEST(ShmStore, RepublishFlipsEpochsWithoutInvalidatingOldSnapshots) {
  const std::string name = test_store_name("swap");
  ShmStore::unlink(name);
  ShmStore writer = ShmStore::create(name);

  const std::vector<Instance> first = {make_instance({1, 2}, {3, 4}, 2)};
  const std::vector<Instance> second = {make_instance({5}, {6}, 1),
                                        make_instance({7, 8, 9}, {1, 1, 1}, 3)};
  writer.publish(wire::encode_instances(first));
  const std::shared_ptr<storage::ShmMapping> old_snap = writer.snapshot();
  ASSERT_NE(old_snap, nullptr);

  writer.publish(wire::encode_instances(second));
  EXPECT_EQ(writer.info().epoch, 2u);
  EXPECT_EQ(writer.info().instances, 2u);

  // The epoch-1 mapping stays readable after its segment was unlinked.
  const wire::InstanceView old_view(old_snap->bytes());
  ASSERT_EQ(old_view.count(), 1u);
  EXPECT_EQ(old_view.materialize(0).n(), 2u);

  const std::shared_ptr<storage::ShmMapping> new_snap = writer.snapshot();
  ASSERT_NE(new_snap, nullptr);
  EXPECT_EQ(new_snap->epoch(), 2u);
  EXPECT_EQ(wire::InstanceView(new_snap->bytes()).count(), 2u);

  EXPECT_EQ(ShmStore::unlink(name), 2u);  // metadata + live epoch only
}

TEST(ShmStore, AttachToMissingStoreThrows) {
  EXPECT_THROW(ShmStore::attach(test_store_name("never-created")),
               std::runtime_error);
}

TEST(ShmStore, SharedCacheIsVisibleAcrossHandles) {
  const std::string name = test_store_name("cache");
  ShmStore::unlink(name);
  ShmStore writer = ShmStore::create(name);
  ShmStore reader = ShmStore::attach(name);

  const std::string spec = "graham:lpt";
  const std::unique_ptr<Solver> solver = make_solver(spec);
  const Instance inst = make_instance({3, 1, 2}, {1, 2, 3}, 2);
  SolveOptions options;
  writer.cache().insert(inst, spec, options, solver->solve(inst, options));

  const std::optional<SolveResult> warm =
      reader.cache().lookup(inst, spec, options);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(full_jsonl(solver->solve(inst, options)), full_jsonl(*warm));
  // Region-wide counters agree from both ends.
  EXPECT_EQ(writer.info().cache.inserts, 1u);
  EXPECT_EQ(reader.info().cache.hits, 1u);

  ShmStore::unlink(name);
}

TEST(ShmStore, ConcurrentReadersSurviveRegionSwaps) {
  // The acceptance criterion's TSan scenario: readers attach, snapshot and
  // materialize continuously while the writer republishes new epochs.
  // Every snapshot must be a whole, valid container from *some* epoch.
  const std::string name = test_store_name("race");
  ShmStore::unlink(name);
  ShmStore writer = ShmStore::create(name);
  writer.publish(wire::encode_instances(
      std::vector<Instance>{make_instance({1}, {1}, 1)}));

  constexpr int kEpochs = 30;
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ShmStore reader = ShmStore::attach(name);
        const std::shared_ptr<storage::ShmMapping> snap = reader.snapshot();
        if (snap == nullptr) continue;  // racing the very first flip
        // Epoch E publishes E instances of weight E (epoch 1 aside, which
        // published one instance of weight 1 -- same rule).
        const wire::InstanceView view(snap->bytes());
        const auto epoch = static_cast<std::size_t>(snap->epoch());
        if (view.count() != epoch) {
          bad.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < view.count(); ++i) {
          const Instance inst = view.materialize(i);
          if (inst.task(0).p != static_cast<Time>(epoch)) bad.fetch_add(1);
        }
      }
    });
  }

  for (int epoch = 2; epoch <= kEpochs; ++epoch) {
    std::vector<Instance> batch;
    for (int i = 0; i < epoch; ++i) {
      batch.push_back(make_instance({static_cast<Time>(epoch)},
                                    {static_cast<Mem>(epoch)}, 1));
    }
    writer.publish(wire::encode_instances(batch));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(writer.info().epoch, static_cast<std::uint64_t>(kEpochs));
  ShmStore::unlink(name);
}

// ---------------------------------------------------------------------------
// solve_stream integration.
// ---------------------------------------------------------------------------

TEST(StreamCache, SecondRunIsAllHitsAndBitIdentical) {
  const std::unique_ptr<Solver> solver = make_solver("sbo:lpt,delta=3/2");
  const std::vector<Instance> instances = cache_fixture_instances();
  SolveCache cache;
  StreamOptions stream;
  stream.cache = &cache;
  stream.threads = 2;

  std::vector<SolveResult> cold(instances.size());
  {
    SpanSource source(instances);
    VectorSink sink(cold);
    const StreamStats stats = solve_stream(*solver, source, sink, {}, stream);
    EXPECT_EQ(stats.delivered, instances.size());
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_misses, instances.size());
  }
  std::vector<SolveResult> warm(instances.size());
  {
    SpanSource source(instances);
    VectorSink sink(warm);
    const StreamStats stats = solve_stream(*solver, source, sink, {}, stream);
    EXPECT_EQ(stats.delivered, instances.size());
    EXPECT_EQ(stats.cache_hits, instances.size());
    EXPECT_EQ(stats.cache_misses, 0u);
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(full_jsonl(cold[i]), full_jsonl(warm[i])) << "instance " << i;
  }
}

TEST(StreamCache, NoCachePointerMeansNoCounters) {
  const std::unique_ptr<Solver> solver = make_solver("graham:lpt");
  const std::vector<Instance> instances = cache_fixture_instances();
  std::vector<SolveResult> results(instances.size());
  SpanSource source(instances);
  VectorSink sink(results);
  const StreamStats stats = solve_stream(*solver, source, sink);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(StreamCache, DuplicatesWithinOneRunHitAfterTheFirstSolve) {
  // 1 distinct instance repeated: with a single worker the first record
  // misses and inserts, the rest are hits.
  const std::unique_ptr<Solver> solver = make_solver("graham:lpt");
  const Instance inst = make_instance({9, 1, 2, 7, 5}, {1, 8, 9, 3, 4}, 2);
  const std::vector<Instance> instances(6, inst);
  SolveCache cache;
  StreamOptions stream;
  stream.cache = &cache;
  stream.threads = 1;

  std::vector<SolveResult> results(instances.size());
  SpanSource source(instances);
  VectorSink sink(results);
  const StreamStats stats = solve_stream(*solver, source, sink, {}, stream);
  EXPECT_EQ(stats.cache_hits, instances.size() - 1);
  EXPECT_EQ(stats.cache_misses, 1u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(full_jsonl(results[0]), full_jsonl(results[i]));
  }
}

TEST(StreamCache, ShmStoreSourceAndSharedCacheComposeEndToEnd) {
  // The CLI's --store --cache shape in-process: publish, stream from the
  // store through its shared cache twice, expect a fully warm second run.
  const std::string name = test_store_name("stream");
  ShmStore::unlink(name);
  ShmStore store = ShmStore::create(name);
  const std::vector<Instance> instances = cache_fixture_instances();
  store.publish(wire::encode_instances(instances));

  const std::unique_ptr<Solver> solver = make_solver("sbo:lpt,delta=3/2");
  StreamOptions stream;
  stream.cache = &store.cache();

  std::vector<SolveResult> cold(instances.size());
  {
    storage::ShmInstanceSource source(store);
    VectorSink sink(cold);
    solve_stream(*solver, source, sink, {}, stream);
  }
  std::vector<SolveResult> warm(instances.size());
  {
    storage::ShmInstanceSource source(store);
    VectorSink sink(warm);
    const StreamStats stats = solve_stream(*solver, source, sink, {}, stream);
    EXPECT_EQ(stats.cache_hits, instances.size());
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(full_jsonl(cold[i]), full_jsonl(warm[i]));
  }
  EXPECT_EQ(store.info().cache.inserts, instances.size());
  ShmStore::unlink(name);
}

}  // namespace
}  // namespace storesched
